#include "netlist/gen/iscas_profiles.hpp"

#include <array>

#include "netlist/gen/multiplier.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::netlist::gen {

namespace {

constexpr std::array<std::string_view, 6> kTable1Names = {
    "c1908", "c2670", "c3540", "c5315", "c6288", "c7552"};

struct KindMix {
  double buf, not_, and_, nand_, or_, nor_, xor_, xnor_;
};

DagProfile make_profile(std::string name, std::size_t pis, std::size_t pos,
                        std::size_t gates, std::size_t depth, KindMix mix,
                        std::uint64_t seed) {
  DagProfile p;
  p.name = std::move(name);
  p.inputs = pis;
  p.outputs = pos;
  p.gates = gates;
  p.depth = depth;
  p.seed = seed;
  p.kind_weights[static_cast<std::size_t>(GateKind::kBuf)] = mix.buf;
  p.kind_weights[static_cast<std::size_t>(GateKind::kNot)] = mix.not_;
  p.kind_weights[static_cast<std::size_t>(GateKind::kAnd)] = mix.and_;
  p.kind_weights[static_cast<std::size_t>(GateKind::kNand)] = mix.nand_;
  p.kind_weights[static_cast<std::size_t>(GateKind::kOr)] = mix.or_;
  p.kind_weights[static_cast<std::size_t>(GateKind::kNor)] = mix.nor_;
  p.kind_weights[static_cast<std::size_t>(GateKind::kXor)] = mix.xor_;
  p.kind_weights[static_cast<std::size_t>(GateKind::kXnor)] = mix.xnor_;
  p.fanin_weights = {0.72, 0.16, 0.08, 0.04};
  return p;
}

}  // namespace

std::span<const std::string_view> table1_circuit_names() {
  return kTable1Names;
}

DagProfile iscas_profile(std::string_view name) {
  const std::string n = str::to_lower(name);
  // PI/PO/gate-count/depth figures are the published ISCAS85 statistics;
  // kind mixes are approximations of the published per-function counts.
  if (n == "c1908")
    return make_profile("c1908", 33, 25, 880, 40,
                        {.buf = 0.08, .not_ = 0.35, .and_ = 0.04,
                         .nand_ = 0.44, .or_ = 0.02, .nor_ = 0.05,
                         .xor_ = 0.01, .xnor_ = 0.01},
                        0xC1908);
  if (n == "c2670")
    return make_profile("c2670", 233, 140, 1193, 32,
                        {.buf = 0.17, .not_ = 0.28, .and_ = 0.10,
                         .nand_ = 0.29, .or_ = 0.07, .nor_ = 0.09,
                         .xor_ = 0.0, .xnor_ = 0.0},
                        0xC2670);
  if (n == "c3540")
    return make_profile("c3540", 50, 22, 1669, 47,
                        {.buf = 0.13, .not_ = 0.29, .and_ = 0.15,
                         .nand_ = 0.28, .or_ = 0.06, .nor_ = 0.08,
                         .xor_ = 0.01, .xnor_ = 0.0},
                        0xC3540);
  if (n == "c5315")
    return make_profile("c5315", 178, 123, 2307, 49,
                        {.buf = 0.12, .not_ = 0.27, .and_ = 0.18,
                         .nand_ = 0.27, .or_ = 0.11, .nor_ = 0.05,
                         .xor_ = 0.0, .xnor_ = 0.0},
                        0xC5315);
  if (n == "c7552")
    return make_profile("c7552", 207, 108, 3512, 43,
                        {.buf = 0.12, .not_ = 0.35, .and_ = 0.15,
                         .nand_ = 0.30, .or_ = 0.03, .nor_ = 0.05,
                         .xor_ = 0.0, .xnor_ = 0.0},
                        0xC7552);
  if (n == "c6288")
    throw LookupError(
        "c6288 is generated structurally (make_multiplier / make_iscas_like), "
        "not from a statistical profile");
  throw LookupError("unknown ISCAS85 profile '" + std::string(name) + "'");
}

Netlist make_iscas_like(std::string_view name) {
  const std::string n = str::to_lower(name);
  if (n == "c6288") return make_multiplier(16, "c6288");
  return make_random_dag(iscas_profile(n));
}

}  // namespace iddq::netlist::gen
