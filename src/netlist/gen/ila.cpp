#include "netlist/gen/ila.hpp"

#include <string>

#include "netlist/builder.hpp"
#include "support/error.hpp"

namespace iddq::netlist::gen {

IlaArray make_and_exor_ila(std::size_t rows, std::size_t cols) {
  require(rows >= 2 && cols >= 1,
          "make_and_exor_ila: need rows >= 2, cols >= 1");
  NetlistBuilder b("ila" + std::to_string(rows) + "x" + std::to_string(cols));

  // Broadcast operand lines: every x feeds a whole column of AND cells,
  // every y a whole row — the high-fanout structure random DAGs lack.
  std::vector<GateId> x(cols);
  std::vector<GateId> y(rows);
  for (std::size_t c = 0; c < cols; ++c)
    x[c] = b.add_input("x" + std::to_string(c));
  for (std::size_t r = 0; r < rows; ++r)
    y[r] = b.add_input("y" + std::to_string(r));

  IlaArray out;
  out.and_cell.assign(rows, std::vector<GateId>(cols));
  out.sum_cell.assign(rows, std::vector<GateId>(cols));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const GateId partial = b.add_gate(
          GateKind::kAnd,
          "and_" + std::to_string(r) + "_" + std::to_string(c), {x[c], y[r]});
      out.and_cell[r][c] = partial;
      out.sum_cell[r][c] =
          r == 0 ? partial
                 : b.add_gate(GateKind::kXor,
                              "sum_" + std::to_string(r) + "_" +
                                  std::to_string(c),
                              {out.sum_cell[r - 1][c], partial});
    }
  }
  for (std::size_t c = 0; c < cols; ++c)
    b.mark_output(out.sum_cell[rows - 1][c]);
  out.netlist = std::move(b).build();
  return out;
}

}  // namespace iddq::netlist::gen
