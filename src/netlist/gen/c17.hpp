// Exact ISCAS85 C17: 5 inputs, 2 outputs, 6 two-input NAND gates.
//
// This is the worked example of the paper's section 4.3 (figures 3-5); the
// evolution-based algorithm's optimum partition for it is
// {(g10, g16, g22), (g11, g19, g23)} in ISCAS signal names — the paper's
// {(1,3,5), (2,4,6)} with gates numbered g1..g6 in topological order.
#pragma once

#include "netlist/netlist.hpp"

namespace iddq::netlist::gen {

[[nodiscard]] Netlist make_c17();

}  // namespace iddq::netlist::gen
