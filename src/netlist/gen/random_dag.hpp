// Profile-driven random DAG generator.
//
// Produces deterministic pseudo-random combinational circuits matching a
// statistical profile: primary input/output counts, logic-gate count, logical
// depth, gate-kind mix, and fan-in distribution. Used to synthesize stand-ins
// for the ISCAS85 benchmark circuits (see iscas_profiles.hpp and the
// substitution note in DESIGN.md §2).
//
// Construction guarantees:
//  * exact logic-gate count and exact logical depth (every level non-empty,
//    each gate takes one fanin from the previous level);
//  * acyclic by construction (fanins only from strictly lower levels);
//  * every primary input drives at least one gate;
//  * primary outputs = all sinks (fanout-free gates), padded with random
//    deep gates up to the requested count when needed (the generator keeps
//    the number of sinks close to the requested output count by preferring
//    fanout-free gates when selecting fanins).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "netlist/gate.hpp"
#include "netlist/netlist.hpp"

namespace iddq::netlist::gen {

struct DagProfile {
  std::string name;
  std::size_t inputs = 8;
  std::size_t outputs = 4;
  std::size_t gates = 100;
  std::size_t depth = 10;
  /// Relative weight of each gate kind (kInput entry ignored).
  std::array<double, kGateKindCount> kind_weights{};
  /// Relative weight of fan-in 2, 3, 4 and 5 for multi-input kinds.
  std::array<double, 4> fanin_weights{1.0, 0.0, 0.0, 0.0};
  std::uint64_t seed = 1;

  /// A small, fully valid default mix (NAND-heavy).
  [[nodiscard]] static DagProfile basic(std::string name, std::size_t gates,
                                        std::size_t depth, std::uint64_t seed);
};

/// Generates a circuit following `profile`. Throws iddq::Error when the
/// profile is infeasible (e.g. depth > gates, or no positive kind weight).
[[nodiscard]] Netlist make_random_dag(const DagProfile& profile);

}  // namespace iddq::netlist::gen
