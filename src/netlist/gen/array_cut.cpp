#include "netlist/gen/array_cut.hpp"

#include "netlist/builder.hpp"
#include "support/error.hpp"

namespace iddq::netlist::gen {

namespace {
GateKind cell_kind(std::size_t column) {
  switch (column % 3) {
    case 0: return GateKind::kNand;  // C1
    case 1: return GateKind::kNor;   // C2
    default: return GateKind::kAnd;  // C3
  }
}
}  // namespace

ArrayCut make_array_cut(std::size_t rows, std::size_t cols) {
  require(rows >= 2 && cols >= 1, "make_array_cut: need rows >= 2, cols >= 1");
  NetlistBuilder b("array" + std::to_string(rows) + "x" + std::to_string(cols));

  std::vector<GateId> row_in(rows);
  for (std::size_t r = 0; r < rows; ++r)
    row_in[r] = b.add_input("in_r" + std::to_string(r));

  // Braided mesh: cell (r, c) reads its own row and the neighbouring row of
  // the previous column, so *both* inputs arrive at exactly depth c and
  // T(cell) = {c+1} — a clean switching wavefront marching across the
  // columns, which is what makes figure 2's shape argument sharp.
  ArrayCut out;
  out.cell.assign(rows, std::vector<GateId>(cols));
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) {
      const GateId own =
          c == 0 ? row_in[r] : out.cell[r][c - 1];
      const GateId neighbor =
          c == 0 ? row_in[(r + 1) % rows] : out.cell[(r + 1) % rows][c - 1];
      out.cell[r][c] = b.add_gate(
          cell_kind(c), "x_" + std::to_string(r) + "_" + std::to_string(c),
          {own, neighbor});
    }
  }
  for (std::size_t r = 0; r < rows; ++r) b.mark_output(out.cell[r][cols - 1]);
  out.netlist = std::move(b).build();
  return out;
}

std::vector<std::vector<GateId>> row_band_partition(const ArrayCut& cut,
                                                    std::size_t bands) {
  const std::size_t rows = cut.cell.size();
  require(bands >= 1 && bands <= rows,
          "row_band_partition: bands must be in [1, rows]");
  std::vector<std::vector<GateId>> groups(bands);
  const std::size_t per = rows / bands;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t g = std::min(r / per, bands - 1);
    for (const GateId id : cut.cell[r]) groups[g].push_back(id);
  }
  return groups;
}

std::vector<std::vector<GateId>> column_band_partition(const ArrayCut& cut,
                                                       std::size_t bands) {
  require(!cut.cell.empty(), "column_band_partition: empty array");
  const std::size_t cols = cut.cell.front().size();
  require(bands >= 1 && bands <= cols,
          "column_band_partition: bands must be in [1, cols]");
  std::vector<std::vector<GateId>> groups(bands);
  const std::size_t per = cols / bands;
  for (const auto& row : cut.cell) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t g = std::min(c / per, bands - 1);
      groups[g].push_back(row[c]);
    }
  }
  return groups;
}

}  // namespace iddq::netlist::gen
