// ISCAS85 benchmark stand-ins.
//
// The paper's Table 1 evaluates on C1908, C2670, C3540, C5315, C6288 and
// C7552 (the paper's "C7522" is read as C7552, the standard ISCAS85 name
// matching the 3512-gate size). The original netlists are public but not
// redistributable inside this offline build, so `make_iscas_like` synthesizes
// deterministic circuits matching each benchmark's published statistics
// (PI/PO counts, gate count, logical depth, gate-kind mix); C6288 is instead
// generated as a real gate-level 16x16 parallel array multiplier — the
// structure C6288 actually is — because its 2-D array regularity is what
// drives the paper's partition-shape effects.
//
// Real .bench files, when available, can be loaded with
// netlist::read_bench_file and used with the identical downstream flow.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "netlist/gen/random_dag.hpp"
#include "netlist/netlist.hpp"

namespace iddq::netlist::gen {

/// Names of the Table 1 circuits, in paper order.
[[nodiscard]] std::span<const std::string_view> table1_circuit_names();

/// Statistical profile for a named ISCAS85 circuit (c1908, c2670, c3540,
/// c5315, c7552). Throws iddq::LookupError for unknown names and for c6288
/// (which is structurally generated, not profile-sampled).
[[nodiscard]] DagProfile iscas_profile(std::string_view name);

/// Builds the stand-in for any Table 1 circuit (case-insensitive name).
/// c6288 maps to the 16x16 array multiplier; the rest are profile-sampled.
[[nodiscard]] Netlist make_iscas_like(std::string_view name);

}  // namespace iddq::netlist::gen
