// The Figure-2 CUT: a two-dimensional array of cells with three cell types.
//
// The paper's figure 2 motivates shape-aware partitioning with a CUT that is
// a 2-D array involving cell types C1, C2, C3: grouping cells *along* the
// signal flow (partition 1) keeps the per-group maximum transient current low
// because the chained cells never switch simultaneously, while grouping cells
// *across* the flow (partition 2) makes whole groups switch in parallel and
// forces larger bypass switches.
//
// make_array_cut(rows, cols) builds a braided systolic mesh of rows x cols
// cells. Cell (r, c) has kind cycle(c) in {NAND, NOR, AND} (the three cell
// types) and reads two depth-c signals: its own row's previous cell and the
// neighbouring row's previous cell (primary inputs at column 0). All cells
// of column c therefore sit at exactly depth c+1 with the singleton
// transition-time set {c+1}: a switching wavefront marches across the
// columns. Helpers row_band_partition / column_band_partition build the two
// partitions compared by the figure2_shape bench.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::netlist::gen {

struct ArrayCut {
  Netlist netlist;
  /// cell[r][c] = gate id of the array cell at row r, column c.
  std::vector<std::vector<GateId>> cell;
};

/// rows >= 2 (the braid needs a neighbouring row), cols >= 1.
[[nodiscard]] ArrayCut make_array_cut(std::size_t rows, std::size_t cols);

/// Groups of gate ids: `bands` modules, each a contiguous band of rows
/// (partition 1 of figure 2 — cells along the signal flow). `bands` must
/// divide nothing in particular; remainder rows go to the last band.
[[nodiscard]] std::vector<std::vector<GateId>> row_band_partition(
    const ArrayCut& cut, std::size_t bands);

/// `bands` modules, each a contiguous band of columns (partition 2 —
/// cells across the signal flow, switching in parallel).
[[nodiscard]] std::vector<std::vector<GateId>> column_band_partition(
    const ArrayCut& cut, std::size_t bands);

}  // namespace iddq::netlist::gen
