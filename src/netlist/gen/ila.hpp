// AND-EXOR iterative logic array (ILA) generator.
//
// The ILA testability literature (PAPERS.md, Chakraborty) studies arrays
// built by tiling one cell: regular structure, broadcast operand lines,
// and long identical chains. That is a workload class the random-DAG
// ISCAS profiles cannot produce, and exactly where partitioning choices
// are starkest — a module can follow the tiling (rows of cells with one
// sensor per band) or cut across it.
//
// make_and_exor_ila(rows, cols) tiles the classic AND-EXOR cell of a
// carry-free (Reed-Muller style) multiplier plane: operand lines x[0..C-1]
// (columns) and y[0..R-1] (rows) are broadcast across the array; cell
// (r, c) computes and_r_c = AND(x[c], y[r]) and accumulates down the
// column, s_r_c = XOR(s_{r-1}_c, and_r_c) with s_0_c = and_0_c. The
// column outputs are s_{R-1}_c = x[c] AND parity(y) — trivially checkable,
// which is what the functional tests pin. Gate count: rows*cols ANDs +
// (rows-1)*cols XORs.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::netlist::gen {

struct IlaArray {
  Netlist netlist;
  /// and_cell[r][c] / sum_cell[r][c]: gate ids of the tiled cells.
  /// sum_cell[0][c] aliases and_cell[0][c] (the first row has no
  /// accumulator XOR).
  std::vector<std::vector<GateId>> and_cell;
  std::vector<std::vector<GateId>> sum_cell;
};

/// rows >= 2 (one row would leave the XOR plane empty), cols >= 1.
[[nodiscard]] IlaArray make_and_exor_ila(std::size_t rows, std::size_t cols);

}  // namespace iddq::netlist::gen
