#include "netlist/gen/multiplier.hpp"

#include <vector>

#include "netlist/builder.hpp"
#include "support/error.hpp"

namespace iddq::netlist::gen {

namespace {

/// Helper emitting NOR-cell adders with systematic names.
class MultBuilder {
 public:
  explicit MultBuilder(NetlistBuilder& b) : b_(b) {}

  GateId nor(std::string name, GateId a, GateId b) {
    return b_.add_gate(GateKind::kNor, std::move(name), {a, b});
  }

  /// 9-NOR full adder; returns {sum, carry}. See header for the cell netlist.
  std::pair<GateId, GateId> full_add(const std::string& tag, GateId a,
                                     GateId b, GateId c) {
    const GateId n1 = nor(tag + "_n1", a, b);
    const GateId n2 = nor(tag + "_n2", a, n1);
    const GateId n3 = nor(tag + "_n3", b, n1);
    const GateId x = nor(tag + "_x", n2, n3);  // XNOR(a,b)
    const GateId p1 = nor(tag + "_p1", x, c);
    const GateId p2 = nor(tag + "_p2", x, p1);
    const GateId p3 = nor(tag + "_p3", c, p1);
    const GateId s = nor(tag + "_s", p2, p3);      // a ^ b ^ c
    const GateId cout = nor(tag + "_co", n1, p1);  // majority(a,b,c)
    return {s, cout};
  }

  /// NOR/NOT half adder; returns {sum, carry}.
  std::pair<GateId, GateId> half_add(const std::string& tag, GateId a,
                                     GateId b) {
    const GateId n1 = nor(tag + "_n1", a, b);
    const GateId n2 = nor(tag + "_n2", a, n1);
    const GateId n3 = nor(tag + "_n3", b, n1);
    const GateId xn = nor(tag + "_xn", n2, n3);                   // XNOR(a,b)
    const GateId s = b_.add_gate(GateKind::kNot, tag + "_s", {xn});  // a ^ b
    const GateId cout = nor(tag + "_co", n1, s);                  // a & b
    return {s, cout};
  }

  /// Sum-only half adder (for the top product bit, whose carry is provably
  /// zero — emitting it would leave a dangling gate).
  GateId half_sum(const std::string& tag, GateId a, GateId b) {
    const GateId n1 = nor(tag + "_n1", a, b);
    const GateId n2 = nor(tag + "_n2", a, n1);
    const GateId n3 = nor(tag + "_n3", b, n1);
    const GateId xn = nor(tag + "_xn", n2, n3);
    return b_.add_gate(GateKind::kNot, tag + "_s", {xn});  // a ^ b
  }

 private:
  NetlistBuilder& b_;
};

}  // namespace

Netlist make_multiplier(std::size_t n, std::string_view name) {
  require(n >= 2 && n <= 64, "make_multiplier: n must be in [2, 64]");
  const std::string circuit_name =
      name.empty() ? "mult" + std::to_string(n) + "x" + std::to_string(n)
                   : std::string(name);
  NetlistBuilder b(circuit_name);
  MultBuilder mb(b);

  std::vector<GateId> a(n);
  std::vector<GateId> bb(n);
  for (std::size_t i = 0; i < n; ++i)
    a[i] = b.add_input("a" + std::to_string(i));
  for (std::size_t j = 0; j < n; ++j)
    bb[j] = b.add_input("b" + std::to_string(j));

  // Partial products pp[i][j] = a_i & b_j, contributing at weight i+j.
  std::vector<std::vector<GateId>> pp(n, std::vector<GateId>(n));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      pp[i][j] = b.add_gate(
          GateKind::kAnd,
          "pp_" + std::to_string(i) + "_" + std::to_string(j), {a[i], bb[j]});

  // Carry-save array (the physical C6288 structure): each row j reduces its
  // partial-product row against the previous row's sum bits, and the carries
  // are passed *diagonally down* to the next row instead of rippling within
  // the row. Every cell therefore depends only on row j-1, which keeps the
  // possible-transition-time sets T(g) narrow — the regular 2-D wavefront
  // that makes C6288 the interesting shape case for BIC partitioning.
  std::vector<GateId> sum_at(2 * n, kNoGate);    // S_j, weight-indexed
  std::vector<GateId> carry_in(2 * n, kNoGate);  // carries entering row j+1
  for (std::size_t i = 0; i < n; ++i) sum_at[i] = pp[i][0];

  for (std::size_t j = 1; j < n; ++j) {
    std::vector<GateId> carry_next(2 * n, kNoGate);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t w = j + i;
      const std::string tag =
          "r" + std::to_string(j) + "_c" + std::to_string(i);
      GateId ops[3];
      std::size_t count = 0;
      ops[count++] = pp[i][j];
      if (sum_at[w] != kNoGate) ops[count++] = sum_at[w];
      if (carry_in[w] != kNoGate) ops[count++] = carry_in[w];
      if (count == 3) {
        const auto [s, c] = mb.full_add(tag, ops[0], ops[1], ops[2]);
        sum_at[w] = s;
        carry_next[w + 1] = c;
      } else if (count == 2) {
        const auto [s, c] = mb.half_add(tag, ops[0], ops[1]);
        sum_at[w] = s;
        carry_next[w + 1] = c;
      } else {
        sum_at[w] = ops[0];
      }
    }
    // A carry entering a weight beyond the row's top cell survives to the
    // next row untouched.
    for (std::size_t w = j + n; w < 2 * n; ++w) {
      if (carry_in[w] != kNoGate) {
        IDDQ_ASSERT(carry_next[w] == kNoGate);
        carry_next[w] = carry_in[w];
      }
    }
    carry_in = std::move(carry_next);
  }

  // Final vector-merge adder: ripple the surviving carries into the sums
  // (weights n .. 2n-1), the "last row" of the physical array.
  GateId ripple = kNoGate;
  for (std::size_t w = n; w < 2 * n; ++w) {
    const std::string tag = "fin_w" + std::to_string(w);
    GateId ops[3];
    std::size_t count = 0;
    if (sum_at[w] != kNoGate) ops[count++] = sum_at[w];
    if (carry_in[w] != kNoGate) ops[count++] = carry_in[w];
    if (ripple != kNoGate) ops[count++] = ripple;
    const bool top = (w == 2 * n - 1);  // carry out of the MSB is provably 0
    if (count == 3) {
      IDDQ_ASSERT(!top);
      const auto [s, c] = mb.full_add(tag, ops[0], ops[1], ops[2]);
      sum_at[w] = s;
      ripple = c;
    } else if (count == 2) {
      if (top) {
        sum_at[w] = mb.half_sum(tag, ops[0], ops[1]);
        ripple = kNoGate;
      } else {
        const auto [s, c] = mb.half_add(tag, ops[0], ops[1]);
        sum_at[w] = s;
        ripple = c;
      }
    } else if (count == 1) {
      sum_at[w] = ops[0];
      ripple = kNoGate;
    } else {
      sum_at[w] = kNoGate;  // unreachable for n >= 2; guarded below
    }
  }
  IDDQ_ASSERT(ripple == kNoGate);

  for (std::size_t w = 0; w < 2 * n; ++w) {
    IDDQ_ASSERT(sum_at[w] != kNoGate);
    b.mark_output(sum_at[w]);
  }
  return std::move(b).build();
}

}  // namespace iddq::netlist::gen
