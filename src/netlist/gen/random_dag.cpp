#include "netlist/gen/random_dag.hpp"

#include <algorithm>
#include <vector>

#include "netlist/builder.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace iddq::netlist::gen {

namespace {

/// Draws an index from a discrete weight table with precomputed total.
std::size_t draw_weighted(Rng& rng, std::span<const double> weights,
                          double total) {
  double x = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace

DagProfile DagProfile::basic(std::string name, std::size_t gates,
                             std::size_t depth, std::uint64_t seed) {
  DagProfile p;
  p.name = std::move(name);
  p.gates = gates;
  p.depth = depth;
  p.seed = seed;
  p.inputs = std::max<std::size_t>(4, gates / 20);
  p.outputs = std::max<std::size_t>(2, gates / 30);
  p.kind_weights[static_cast<std::size_t>(GateKind::kNot)] = 0.25;
  p.kind_weights[static_cast<std::size_t>(GateKind::kNand)] = 0.40;
  p.kind_weights[static_cast<std::size_t>(GateKind::kNor)] = 0.15;
  p.kind_weights[static_cast<std::size_t>(GateKind::kAnd)] = 0.10;
  p.kind_weights[static_cast<std::size_t>(GateKind::kOr)] = 0.10;
  p.fanin_weights = {0.80, 0.15, 0.05, 0.0};
  return p;
}

Netlist make_random_dag(const DagProfile& profile) {
  require(profile.gates >= profile.depth,
          "random dag: gate count must be >= depth");
  require(profile.depth >= 1, "random dag: depth must be >= 1");
  require(profile.inputs >= 1, "random dag: need at least one input");
  require(profile.outputs >= 1, "random dag: need at least one output");

  double kind_total = 0.0;
  for (std::size_t k = 0; k < kGateKindCount; ++k) {
    if (k == static_cast<std::size_t>(GateKind::kInput)) continue;
    require(profile.kind_weights[k] >= 0.0, "random dag: negative kind weight");
    kind_total += profile.kind_weights[k];
  }
  require(kind_total > 0.0, "random dag: all kind weights are zero");
  double fanin_total = 0.0;
  for (const double w : profile.fanin_weights) fanin_total += w;
  require(fanin_total > 0.0, "random dag: all fanin weights are zero");

  Rng rng(profile.seed);
  NetlistBuilder b(profile.name);

  std::vector<GateId> inputs;
  inputs.reserve(profile.inputs);
  for (std::size_t i = 0; i < profile.inputs; ++i)
    inputs.push_back(b.add_input("pi" + std::to_string(i)));

  // Distribute gates over levels: every level gets at least one gate; the
  // remainder is spread with a mid-depth bulge (flat floor + parabola),
  // mimicking the level-population shape of the ISCAS circuits.
  std::vector<std::size_t> level_size(profile.depth, 1);
  {
    const std::size_t remaining = profile.gates - profile.depth;
    std::vector<double> w(profile.depth);
    double wt = 0.0;
    for (std::size_t l = 0; l < profile.depth; ++l) {
      const double x =
          (static_cast<double>(l) + 0.5) / static_cast<double>(profile.depth);
      w[l] = 0.25 + x * (1.0 - x);
      wt += w[l];
    }
    for (std::size_t i = 0; i < remaining; ++i)
      level_size[draw_weighted(rng, w, wt)]++;
  }

  // fanout_count[id]: running fanout of every created vertex (self-tracked;
  // used to steer fanin selection toward fanout-free gates so that the
  // number of unintended sinks stays small).
  std::vector<std::size_t> fanout_count(profile.inputs, 0);
  std::vector<std::vector<GateId>> by_level(profile.depth + 1);
  by_level[0] = inputs;

  std::size_t made = 0;
  std::size_t next_input = 0;  // round-robin so every PI drives something
  for (std::size_t level = 1; level <= profile.depth; ++level) {
    by_level[level].reserve(level_size[level - 1]);
    for (std::size_t i = 0; i < level_size[level - 1]; ++i) {
      const auto kind = static_cast<GateKind>(
          draw_weighted(rng, profile.kind_weights, kind_total));
      std::size_t fanin_n = 1;
      if (kind != GateKind::kNot && kind != GateKind::kBuf)
        fanin_n = 2 + draw_weighted(rng, profile.fanin_weights, fanin_total);

      std::vector<GateId> fanins;
      fanins.reserve(fanin_n);
      // First fanin comes from the previous level, pinning depth == level.
      const auto& prev = by_level[level - 1];
      GateId first = prev[rng.index(prev.size())];
      if (level == 1 && next_input < inputs.size()) {
        first = inputs[next_input++];
      } else {
        std::size_t tries = 4;  // prefer a sink from the previous level
        while (tries-- > 0 && fanout_count[first] != 0)
          first = prev[rng.index(prev.size())];
      }
      fanins.push_back(first);
      std::size_t attempts = 0;
      while (fanins.size() < fanin_n && attempts < 64) {
        ++attempts;
        // Level-local fanin choice: real circuits are cone-structured, so a
        // gate's side inputs come mostly from nearby levels (geometric
        // fall-off), keeping the transition-time sets T(g) narrow — the
        // structure the paper's max-current estimator exploits.
        std::size_t back = 1;
        while (back < level && rng.chance(0.35)) ++back;
        const std::size_t src_level = level - back;
        const auto& pool = by_level[src_level];
        GateId cand = pool[rng.index(pool.size())];
        // Bias toward current sinks so the finished circuit does not leak
        // far more primary outputs than the profile requests.
        for (int retry = 0; retry < 6 && fanout_count[cand] != 0; ++retry)
          cand = pool[rng.index(pool.size())];
        if (std::find(fanins.begin(), fanins.end(), cand) != fanins.end())
          continue;
        fanins.push_back(cand);
      }
      if (fanins.size() < 2 &&
          (kind != GateKind::kNot && kind != GateKind::kBuf)) {
        // Degenerate tiny pools: fall back to an inverter.
        const GateId id = b.add_gate(GateKind::kNot,
                                     "g" + std::to_string(made), {fanins[0]});
        fanout_count[fanins[0]]++;
        fanout_count.push_back(0);
        by_level[level].push_back(id);
        ++made;
        continue;
      }
      for (const GateId f : fanins) fanout_count[f]++;
      const GateId id =
          b.add_gate(kind, "g" + std::to_string(made), std::move(fanins));
      fanout_count.push_back(0);
      by_level[level].push_back(id);
      ++made;
    }
  }
  IDDQ_ASSERT(made == profile.gates);

  // Primary outputs: every sink (fanout-free logic gate) must be observable;
  // pad with random deep gates up to the requested count.
  std::vector<GateId> sinks;
  for (std::size_t id = profile.inputs; id < fanout_count.size(); ++id)
    if (fanout_count[id] == 0) sinks.push_back(static_cast<GateId>(id));
  for (const GateId s : sinks) b.mark_output(s);
  std::size_t marked = sinks.size();
  // Pad from the deepest levels down.
  for (std::size_t level = profile.depth; level >= 1 && marked < profile.outputs;
       --level) {
    for (const GateId id : by_level[level]) {
      if (marked >= profile.outputs) break;
      if (fanout_count[id] != 0) {
        b.mark_output(id);
        ++marked;
      }
    }
  }
  return std::move(b).build();
}

}  // namespace iddq::netlist::gen
