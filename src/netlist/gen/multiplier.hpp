// Gate-level n x n parallel array multiplier (C6288 structure).
//
// ISCAS85 C6288 is a 16x16 array multiplier built from a 2-D grid of NOR-only
// adder cells; its regular array structure and large logical depth make it
// the interesting shape case for BIC-sensor partitioning (DESIGN.md §4,
// Figure 2 discussion). make_multiplier(16) produces a functionally verified
// multiplier of ~2400 gates using the classic 9-NOR full-adder cell:
//
//   n1 = NOR(a,b)   n2 = NOR(a,n1)   n3 = NOR(b,n1)   x = NOR(n2,n3)  ; XNOR
//   p1 = NOR(x,c)   p2 = NOR(x,p1)   p3 = NOR(c,p1)   s = NOR(p2,p3)  ; SUM
//   cout = NOR(n1, p1)
//
// Inputs a0..a(n-1), b0..b(n-1); outputs p0..p(2n-1) with
// p = a * b (unsigned), verified by the logic-simulator tests.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace iddq::netlist::gen {

/// Builds an n x n unsigned array multiplier. n must be in [2, 64]
/// (mult64, ~37k gates, anchors the BIG bench tier).
[[nodiscard]] Netlist make_multiplier(std::size_t n,
                                      std::string_view name = "");

}  // namespace iddq::netlist::gen
