#include "netlist/fingerprint.hpp"

#include "support/hash.hpp"

namespace iddq::netlist {

std::uint64_t structural_fingerprint(const Netlist& nl) {
  Hash64 h;
  h.mix_size(nl.gate_count());
  for (const Gate& g : nl.gates()) {
    h.mix_byte(static_cast<std::uint8_t>(g.kind));
    h.mix_size(g.fanins.size());
    for (const GateId f : g.fanins) h.mix_u64(f);
  }
  h.mix_size(nl.primary_outputs().size());
  for (const GateId o : nl.primary_outputs()) h.mix_u64(o);
  return h.value();
}

}  // namespace iddq::netlist
