// NetlistBuilder: the only way to construct a Netlist.
//
// Usage:
//   NetlistBuilder b("c17");
//   auto i1 = b.add_input("1");
//   auto g10 = b.add_gate(GateKind::kNand, "10", {i1, i3});
//   b.mark_output(g22);
//   Netlist nl = std::move(b).build();   // validates and freezes
//
// build() enforces the structural invariants the rest of the system relies
// on: acyclicity, logic gates have >= 1 fanin, inverter/buffer arity, fanout
// lists consistent with fanin lists, at least one primary output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::netlist {

class NetlistBuilder {
 public:
  explicit NetlistBuilder(std::string_view name);

  /// Adds a primary input pad. Names must be unique.
  GateId add_input(std::string_view name);

  /// Adds a logic gate with the given fanins (which must already exist).
  GateId add_gate(GateKind kind, std::string_view name,
                  std::vector<GateId> fanins);

  /// Declares a gate whose fanins will be supplied later via set_fanins()
  /// (needed by .bench files, which may reference signals before defining
  /// them -- our parser resolves in two passes but generators also use this).
  GateId declare_gate(GateKind kind, std::string_view name);

  /// Supplies the fanins of a gate created with declare_gate().
  void set_fanins(GateId id, std::vector<GateId> fanins);

  /// Marks an existing gate as a primary output. Idempotent.
  void mark_output(GateId id);

  /// Number of gates added so far.
  [[nodiscard]] std::size_t gate_count() const noexcept {
    return netlist_.gates_.size();
  }

  /// Looks up a previously added gate by name; kNoGate when absent.
  [[nodiscard]] GateId find(std::string_view name) const;

  /// Validates and returns the finished netlist. The builder is consumed.
  /// Throws iddq::Error on any structural violation.
  [[nodiscard]] Netlist build() &&;

 private:
  GateId add(GateKind kind, std::string_view name);

  Netlist netlist_;
  std::vector<bool> fanins_set_;
};

}  // namespace iddq::netlist
