#include "netlist/circuit_loader.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::netlist {

namespace {

// A bare "c<digits>" token is how users name generators; anything with a
// path separator or an extension is clearly meant as a file.
bool looks_like_builtin_name(std::string_view spec) {
  if (spec.size() < 2 || (spec[0] != 'c' && spec[0] != 'C')) return false;
  return std::all_of(spec.begin() + 1, spec.end(), [](unsigned char ch) {
    return std::isdigit(ch) != 0;
  });
}

}  // namespace

std::vector<std::string> builtin_circuit_names() {
  std::vector<std::string> names{"c17"};
  for (const auto name : gen::table1_circuit_names())
    names.emplace_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

bool is_builtin_circuit(std::string_view spec) {
  const std::string lower = str::to_lower(spec);
  if (lower == "c17") return true;
  const auto table1 = gen::table1_circuit_names();
  return std::find(table1.begin(), table1.end(), lower) != table1.end();
}

Netlist load_circuit(const std::string& spec) {
  const std::string lower = str::to_lower(spec);
  if (lower == "c17") return gen::make_c17();
  if (is_builtin_circuit(lower)) return gen::make_iscas_like(lower);

  std::error_code ec;
  const bool exists = std::filesystem::exists(spec, ec);
  if (!exists && looks_like_builtin_name(spec)) {
    std::ostringstream os;
    os << "unknown builtin circuit '" << spec << "'; valid builtins:";
    for (const auto& name : builtin_circuit_names()) os << ' ' << name;
    os << " (or pass a .bench file path)";
    throw Error(os.str());
  }
  if (!exists)
    throw Error("cannot open circuit file '" + spec +
                "' (not a builtin name either)");
  return read_bench_file(spec);
}

}  // namespace iddq::netlist
