#include "netlist/circuit_loader.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/gen/c17.hpp"
#include "netlist/gen/ila.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "netlist/gen/multiplier.hpp"
#include "netlist/gen/random_dag.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::netlist {

namespace {

bool all_digits(std::string_view s) {
  return !s.empty() && std::all_of(s.begin(), s.end(), [](unsigned char ch) {
    return std::isdigit(ch) != 0;
  });
}

// Parametric ILA builtin: "ila<rows>x<cols>", e.g. "ila8x8". Returns
// whether `lower` (already lower-cased) matches the shape; the dimension
// bounds are enforced in load_circuit so a bad size reports a useful
// error instead of "not a builtin".
bool parse_ila_name(std::string_view lower, std::size_t& rows,
                    std::size_t& cols) {
  if (!str::starts_with(lower, "ila")) return false;
  const auto dims = lower.substr(3);
  const auto x = dims.find('x');
  if (x == std::string_view::npos) return false;
  const auto rows_s = dims.substr(0, x);
  const auto cols_s = dims.substr(x + 1);
  if (!all_digits(rows_s) || !all_digits(cols_s)) return false;
  return str::parse_size(rows_s, rows) && str::parse_size(cols_s, cols);
}

// Parametric big-circuit builtins for the BIG bench tier. "big_dag<N>k"
// is an N-thousand-gate NAND-heavy random DAG (DagProfile::basic shape,
// fixed per-size seed, depth growing gently with size so the time grid
// scales too); "mult<N>" is the N x N NOR-cell array multiplier (the
// c6288 structure scaled up). Bounds are enforced in load_circuit, like
// the ILA family.
bool parse_big_dag_name(std::string_view lower, std::size_t& kgates) {
  if (!str::starts_with(lower, "big_dag")) return false;
  const auto body = lower.substr(7);
  if (body.size() < 2 || body.back() != 'k') return false;
  const auto digits = body.substr(0, body.size() - 1);
  if (!all_digits(digits)) return false;
  return str::parse_size(digits, kgates);
}

bool parse_mult_name(std::string_view lower, std::size_t& n) {
  if (!str::starts_with(lower, "mult")) return false;
  const auto digits = lower.substr(4);
  if (!all_digits(digits)) return false;
  return str::parse_size(digits, n);
}

// A bare "c<digits>", "ila<R>x<C>", "big_dag<N>k", or "mult<N>" token is
// how users name generators; anything with a path separator or an
// extension is clearly meant as a file.
bool looks_like_builtin_name(std::string_view spec) {
  const std::string lower = str::to_lower(spec);
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (parse_ila_name(lower, rows, cols)) return true;
  std::size_t param = 0;
  if (parse_big_dag_name(lower, param) || parse_mult_name(lower, param))
    return true;
  if (spec.size() < 2 || (spec[0] != 'c' && spec[0] != 'C')) return false;
  return all_digits(spec.substr(1));
}

}  // namespace

std::vector<std::string> builtin_circuit_names() {
  // "ila8x8" stands in for the whole parametric ila<R>x<C> family (any
  // 2..256 x 1..256), "big_dag10k" for big_dag<N>k (1..128 thousand
  // gates), and "mult64" for mult<N> (2..64); the load_circuit error text
  // spells that out.
  std::vector<std::string> names{"c17", "ila8x8", "big_dag10k", "mult64"};
  for (const auto name : gen::table1_circuit_names())
    names.emplace_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

bool is_builtin_circuit(std::string_view spec) {
  const std::string lower = str::to_lower(spec);
  if (lower == "c17") return true;
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (parse_ila_name(lower, rows, cols)) return true;
  std::size_t param = 0;
  if (parse_big_dag_name(lower, param) || parse_mult_name(lower, param))
    return true;
  const auto table1 = gen::table1_circuit_names();
  return std::find(table1.begin(), table1.end(), lower) != table1.end();
}

Netlist load_circuit(const std::string& spec) {
  const std::string lower = str::to_lower(spec);
  if (lower == "c17") return gen::make_c17();
  std::size_t ila_rows = 0;
  std::size_t ila_cols = 0;
  if (parse_ila_name(lower, ila_rows, ila_cols)) {
    // Keep parametric sizes sane: make_and_exor_ila needs rows >= 2, and
    // 256x256 (~130k gates) is already far beyond any profiled circuit.
    if (ila_rows < 2 || ila_cols < 1 || ila_rows > 256 || ila_cols > 256)
      throw Error("builtin '" + spec +
                  "': ILA dimensions must be 2..256 x 1..256");
    return gen::make_and_exor_ila(ila_rows, ila_cols).netlist;
  }
  std::size_t kgates = 0;
  if (parse_big_dag_name(lower, kgates)) {
    // 128k gates caps the family comfortably above the 100k north-star
    // without letting a typo (big_dag1000k) allocate the machine away.
    if (kgates < 1 || kgates > 128)
      throw Error("builtin '" + spec +
                  "': big_dag size must be 1..128 (thousand gates)");
    // Depth grows gently with size so the transition-time grid scales
    // along with the gate count (a fixed depth would pin the grid).
    return gen::make_random_dag(gen::DagProfile::basic(
        lower, kgates * 1000, 32 + kgates, 0xB16DA6 + kgates));
  }
  std::size_t mult_n = 0;
  if (parse_mult_name(lower, mult_n)) {
    if (mult_n < 2 || mult_n > 64)
      throw Error("builtin '" + spec + "': mult width must be 2..64");
    return gen::make_multiplier(mult_n);
  }
  if (is_builtin_circuit(lower)) return gen::make_iscas_like(lower);

  std::error_code ec;
  const bool exists = std::filesystem::exists(spec, ec);
  if (!exists && looks_like_builtin_name(spec)) {
    std::ostringstream os;
    os << "unknown builtin circuit '" << spec << "'; valid builtins:";
    for (const auto& name : builtin_circuit_names()) os << ' ' << name;
    os << " (ila<R>x<C> takes any size 2..256 x 1..256, big_dag<N>k any "
          "1..128 thousand gates, mult<N> any width 2..64; or pass a "
          ".bench file path)";
    throw Error(os.str());
  }
  if (!exists)
    throw Error("cannot open circuit file '" + spec +
                "' (not a builtin name either)");
  return read_bench_file(spec);
}

}  // namespace iddq::netlist
