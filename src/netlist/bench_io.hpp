// ISCAS85 .bench reader/writer.
//
// Grammar accepted (the ISCAS85/89 combinational subset):
//   # comment
//   INPUT(name)
//   OUTPUT(name)
//   name = KIND(a, b, ...)        KIND in {BUF, BUFF, NOT, INV, AND, NAND,
//                                          OR, NOR, XOR, XNOR}
//
// Signals may be referenced before their defining line (two-pass resolve).
// OUTPUT(x) lines may precede the definition of x. DFFs are rejected with a
// clear error: the paper (and this library) handles combinational CUTs.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace iddq::netlist {

/// Parses .bench text. `name` becomes the netlist name; `source_label` is
/// used in error messages (e.g. the file path). Throws iddq::ParseError.
[[nodiscard]] Netlist read_bench_text(std::string_view text,
                                      std::string_view name,
                                      std::string_view source_label = "<text>");

/// Reads a .bench file; the netlist name is derived from the file stem.
/// Throws iddq::Error when the file cannot be opened, ParseError on syntax.
[[nodiscard]] Netlist read_bench_file(const std::string& path);

/// Serialises a netlist in .bench syntax (stable, diff-friendly order).
void write_bench(std::ostream& os, const Netlist& nl);

/// Convenience: serialise to a string.
[[nodiscard]] std::string to_bench_string(const Netlist& nl);

}  // namespace iddq::netlist
