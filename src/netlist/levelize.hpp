// Levelization: topological ordering and depth assignment.
//
// Depth is the unit-delay transition-time grid of the paper's current
// estimator (section 3.1): primary inputs sit at depth 0, a logic gate fed
// only by inputs at depth 1, and in general
//   depth(g) = 1 + max over fanins of depth(fanin).
// The *minimum* depth (1 + min over fanins) bounds the earliest possible
// transition; the full set of possible transition times is computed in
// estimators/transition_times.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::netlist {

/// Gate ids in a topological order (fanins before fanouts). Inputs first.
[[nodiscard]] std::vector<GateId> topological_order(const Netlist& nl);

/// True when the netlist is a DAG. (Builder::build() enforces this, so it
/// holds for every constructed Netlist; exposed for tests and parsers.)
[[nodiscard]] bool is_acyclic(const Netlist& nl);

struct Levels {
  /// depth[g]: longest path (in gates) from any primary input; inputs = 0.
  std::vector<std::size_t> depth;
  /// min_depth[g]: shortest such path.
  std::vector<std::size_t> min_depth;
  /// Maximum of depth[] over all gates (the circuit's logical depth).
  std::size_t max_depth = 0;
};

/// Computes depths for every gate.
[[nodiscard]] Levels levelize(const Netlist& nl);

}  // namespace iddq::netlist
