// Netlist: an immutable-after-build gate-level circuit.
//
// Construction goes through NetlistBuilder (builder.hpp) or one of the
// generators (gen/); the class itself only offers queries. Gate ids are dense
// [0, gate_count()), stable, and ordered by creation.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"
#include "support/error.hpp"

namespace iddq::netlist {

class NetlistBuilder;

class Netlist {
 public:
  /// Circuit name (e.g. "c17").
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] std::size_t gate_count() const noexcept {
    return gates_.size();
  }

  /// Number of logic gates (gate_count() minus primary inputs).
  [[nodiscard]] std::size_t logic_gate_count() const noexcept {
    return gates_.size() - inputs_.size();
  }

  // Inline: this is the single hottest accessor in the repository (every
  // graph walk, timing pass, and boundary scan goes through it).
  [[nodiscard]] const Gate& gate(GateId id) const {
    IDDQ_ASSERT(id < gates_.size());
    return gates_[id];
  }

  [[nodiscard]] std::span<const Gate> gates() const noexcept { return gates_; }

  /// Primary inputs, in declaration order.
  [[nodiscard]] std::span<const GateId> primary_inputs() const noexcept {
    return inputs_;
  }

  /// Primary outputs: ids of the gates whose output signal is observable.
  [[nodiscard]] std::span<const GateId> primary_outputs() const noexcept {
    return outputs_;
  }

  /// Ids of all logic gates (kind != kInput), ascending.
  [[nodiscard]] std::span<const GateId> logic_gates() const noexcept {
    return logic_gates_;
  }

  /// True when `id` is marked as a primary output.
  [[nodiscard]] bool is_primary_output(GateId id) const;

  /// Finds a gate by name; returns std::nullopt when absent.
  [[nodiscard]] std::optional<GateId> find(std::string_view name) const;

  /// Finds a gate by name; throws iddq::LookupError when absent.
  [[nodiscard]] GateId at(std::string_view name) const;

 private:
  friend class NetlistBuilder;

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<GateId> outputs_;
  std::vector<GateId> logic_gates_;
  std::vector<bool> is_output_;
  std::unordered_map<std::string, GateId> by_name_;
};

}  // namespace iddq::netlist
