// Structural netlist fingerprinting for the content-addressed result cache.
//
// The fingerprint covers exactly what the partitioning flow can observe:
// per-gate function and fan-in wiring (by dense GateId) plus the primary
// output set. Gate and circuit *names* are deliberately excluded — two
// netlists that differ only in labels produce identical MethodResults, so
// they share cache entries. Fan-outs are derived from fan-ins and carry no
// extra information.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace iddq::netlist {

/// Stable 64-bit structural digest (see docs/caching.md for the recipe).
[[nodiscard]] std::uint64_t structural_fingerprint(const Netlist& nl);

}  // namespace iddq::netlist
