#include "netlist/builder.hpp"

#include <algorithm>

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::netlist {

namespace {
std::string_view kind_word(GateKind k) { return to_string(k); }
}  // namespace

NetlistBuilder::NetlistBuilder(std::string_view name) {
  netlist_.name_ = std::string(name);
}

GateId NetlistBuilder::add(GateKind kind, std::string_view name) {
  require(!name.empty(), "gate name must not be empty");
  const auto [it, inserted] =
      netlist_.by_name_.emplace(std::string(name), GateId{0});
  if (!inserted)
    throw Error("netlist '" + netlist_.name_ + "': duplicate gate name '" +
                std::string(name) + "'");
  const auto id = static_cast<GateId>(netlist_.gates_.size());
  it->second = id;
  Gate g;
  g.kind = kind;
  g.name = std::string(name);
  netlist_.gates_.push_back(std::move(g));
  netlist_.is_output_.push_back(false);
  fanins_set_.push_back(false);
  return id;
}

GateId NetlistBuilder::add_input(std::string_view name) {
  const GateId id = add(GateKind::kInput, name);
  netlist_.inputs_.push_back(id);
  fanins_set_[id] = true;
  return id;
}

GateId NetlistBuilder::add_gate(GateKind kind, std::string_view name,
                                std::vector<GateId> fanins) {
  const GateId id = declare_gate(kind, name);
  set_fanins(id, std::move(fanins));
  return id;
}

GateId NetlistBuilder::declare_gate(GateKind kind, std::string_view name) {
  require(is_logic(kind), "declare_gate: use add_input for primary inputs");
  const GateId id = add(kind, name);
  netlist_.logic_gates_.push_back(id);
  return id;
}

void NetlistBuilder::set_fanins(GateId id, std::vector<GateId> fanins) {
  IDDQ_ASSERT(id < netlist_.gates_.size());
  Gate& g = netlist_.gates_[id];
  require(is_logic(g.kind), "set_fanins: primary inputs have no fanins");
  require(!fanins_set_[id], "set_fanins: fanins already set");
  require(!fanins.empty(), "gate '" + g.name + "' must have at least one fanin");
  if (g.kind == GateKind::kNot || g.kind == GateKind::kBuf) {
    require(fanins.size() == 1, "gate '" + g.name + "' (" +
                                    std::string(kind_word(g.kind)) +
                                    ") must have exactly one fanin");
  } else {
    require(fanins.size() >= 2, "gate '" + g.name + "' (" +
                                    std::string(kind_word(g.kind)) +
                                    ") must have at least two fanins");
  }
  for (const GateId f : fanins) {
    require(f < netlist_.gates_.size(),
            "gate '" + g.name + "': fanin id out of range");
    require(f != id, "gate '" + g.name + "' must not feed itself");
  }
  g.fanins = std::move(fanins);
  for (const GateId f : g.fanins) netlist_.gates_[f].fanouts.push_back(id);
  fanins_set_[id] = true;
}

void NetlistBuilder::mark_output(GateId id) {
  IDDQ_ASSERT(id < netlist_.gates_.size());
  if (!netlist_.is_output_[id]) {
    netlist_.is_output_[id] = true;
    netlist_.outputs_.push_back(id);
  }
}

GateId NetlistBuilder::find(std::string_view name) const {
  const auto it = netlist_.by_name_.find(std::string(name));
  return it == netlist_.by_name_.end() ? kNoGate : it->second;
}

Netlist NetlistBuilder::build() && {
  for (std::size_t id = 0; id < netlist_.gates_.size(); ++id) {
    if (!fanins_set_[id])
      throw Error("netlist '" + netlist_.name_ + "': gate '" +
                  netlist_.gates_[id].name + "' declared but never connected");
  }
  require(!netlist_.outputs_.empty(),
          "netlist '" + netlist_.name_ + "' has no primary outputs");
  require(!netlist_.inputs_.empty(),
          "netlist '" + netlist_.name_ + "' has no primary inputs");
  if (!is_acyclic(netlist_))
    throw Error("netlist '" + netlist_.name_ + "' contains a cycle");
  return std::move(netlist_);
}

}  // namespace iddq::netlist
