// Undirected view of the circuit graph and breadth-first search.
//
// The interconnection cost of section 3.3 is defined on "the undirected graph
// of the logic circuit": two gates are adjacent when one drives the other.
// Primary-input pads participate as traversable vertices (a path may run
// through a shared input).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::netlist {

/// Adjacency lists of the undirected circuit graph (deduplicated, sorted).
class UndirectedGraph {
 public:
  explicit UndirectedGraph(const Netlist& nl);

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return adjacency_.size();
  }

  [[nodiscard]] std::span<const GateId> neighbors(GateId id) const {
    return adjacency_[id];
  }

  /// Total number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

 private:
  std::vector<std::vector<GateId>> adjacency_;
  std::size_t edges_ = 0;
};

/// Hop distances from `source` to every vertex within `radius` hops.
/// Entries beyond the radius (or unreachable) are set to kUnreached.
inline constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);

[[nodiscard]] std::vector<std::uint32_t> bfs_within(
    const UndirectedGraph& graph, GateId source, std::uint32_t radius);

}  // namespace iddq::netlist
