#include "netlist/bench_io.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "netlist/builder.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::netlist {

namespace {

struct AssignLine {
  std::size_t line_no = 0;
  std::string target;
  GateKind kind = GateKind::kBuf;
  std::vector<std::string> operands;
};

struct ParsedFile {
  std::vector<std::pair<std::string, std::size_t>> inputs;   // name, line
  std::vector<std::pair<std::string, std::size_t>> outputs;  // name, line
  std::vector<AssignLine> assigns;
};

ParsedFile scan(std::string_view text, std::string_view label) {
  ParsedFile out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = str::trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open)
        throw ParseError(label, line_no, "expected INPUT(..), OUTPUT(..) or assignment");
      const std::string head = str::to_upper(str::trim(line.substr(0, open)));
      const std::string_view arg = str::trim(line.substr(open + 1, close - open - 1));
      if (arg.empty()) throw ParseError(label, line_no, "empty signal name");
      if (head == "INPUT")
        out.inputs.emplace_back(std::string(arg), line_no);
      else if (head == "OUTPUT")
        out.outputs.emplace_back(std::string(arg), line_no);
      else
        throw ParseError(label, line_no, "unknown directive '" + head + "'");
      continue;
    }

    AssignLine a;
    a.line_no = line_no;
    a.target = std::string(str::trim(line.substr(0, eq)));
    if (a.target.empty()) throw ParseError(label, line_no, "empty target name");
    const std::string_view rhs = str::trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open)
      throw ParseError(label, line_no, "expected KIND(operands) on right-hand side");
    const std::string_view kind_word = str::trim(rhs.substr(0, open));
    if (str::to_upper(kind_word) == "DFF")
      throw ParseError(label, line_no,
                       "sequential element DFF not supported: the IDDQ "
                       "partitioning flow operates on combinational CUTs");
    if (!gate_kind_from_string(kind_word, a.kind) ||
        a.kind == GateKind::kInput)
      throw ParseError(label, line_no,
                       "unknown gate kind '" + std::string(kind_word) + "'");
    for (const auto piece : str::split(rhs.substr(open + 1, close - open - 1), ',')) {
      if (piece.empty())
        throw ParseError(label, line_no, "empty operand in gate '" + a.target + "'");
      a.operands.emplace_back(piece);
    }
    if (a.operands.empty())
      throw ParseError(label, line_no, "gate '" + a.target + "' has no operands");
    out.assigns.push_back(std::move(a));
  }
  return out;
}

}  // namespace

Netlist read_bench_text(std::string_view text, std::string_view name,
                        std::string_view source_label) {
  const ParsedFile parsed = scan(text, source_label);

  NetlistBuilder b(name);
  for (const auto& [in_name, line] : parsed.inputs) {
    if (b.find(in_name) != kNoGate)
      throw ParseError(source_label, line, "duplicate INPUT '" + in_name + "'");
    b.add_input(in_name);
  }
  // Pass 1: declare every assigned signal so forward references resolve.
  for (const auto& a : parsed.assigns) {
    if (b.find(a.target) != kNoGate)
      throw ParseError(source_label, a.line_no,
                       "signal '" + a.target + "' defined twice");
    b.declare_gate(a.kind, a.target);
  }
  // Pass 2: connect.
  for (const auto& a : parsed.assigns) {
    std::vector<GateId> fanins;
    fanins.reserve(a.operands.size());
    for (const auto& op : a.operands) {
      const GateId f = b.find(op);
      if (f == kNoGate)
        throw ParseError(source_label, a.line_no,
                         "gate '" + a.target + "' references undefined signal '" +
                             op + "'");
      fanins.push_back(f);
    }
    try {
      b.set_fanins(b.find(a.target), std::move(fanins));
    } catch (const Error& e) {
      throw ParseError(source_label, a.line_no, e.what());
    }
  }
  for (const auto& [out_name, line] : parsed.outputs) {
    const GateId g = b.find(out_name);
    if (g == kNoGate)
      throw ParseError(source_label, line,
                       "OUTPUT references undefined signal '" + out_name + "'");
    b.mark_output(g);
  }
  try {
    return std::move(b).build();
  } catch (const Error& e) {
    throw ParseError(source_label, 0, e.what());
  }
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open .bench file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  // Derive the circuit name from the file stem.
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos)
    stem = stem.substr(slash + 1);
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos)
    stem = stem.substr(0, dot);
  return read_bench_text(buf.str(), stem, path);
}

void write_bench(std::ostream& os, const Netlist& nl) {
  os << "# " << nl.name() << " — written by iddqsyn\n";
  os << "# " << nl.primary_inputs().size() << " inputs, "
     << nl.primary_outputs().size() << " outputs, " << nl.logic_gate_count()
     << " gates\n";
  for (const GateId id : nl.primary_inputs())
    os << "INPUT(" << nl.gate(id).name << ")\n";
  for (const GateId id : nl.primary_outputs())
    os << "OUTPUT(" << nl.gate(id).name << ")\n";
  os << '\n';
  for (const GateId id : nl.logic_gates()) {
    const Gate& g = nl.gate(id);
    os << g.name << " = " << str::to_upper(to_string(g.kind)) << '(';
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i != 0) os << ", ";
      os << nl.gate(g.fanins[i]).name;
    }
    os << ")\n";
  }
}

std::string to_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(os, nl);
  return os.str();
}

}  // namespace iddq::netlist
