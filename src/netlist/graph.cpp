#include "netlist/graph.hpp"

#include <algorithm>
#include <deque>

namespace iddq::netlist {

UndirectedGraph::UndirectedGraph(const Netlist& nl) {
  adjacency_.resize(nl.gate_count());
  for (GateId id = 0; id < nl.gate_count(); ++id) {
    const Gate& g = nl.gate(id);
    auto& adj = adjacency_[id];
    adj.reserve(g.fanins.size() + g.fanouts.size());
    adj.insert(adj.end(), g.fanins.begin(), g.fanins.end());
    adj.insert(adj.end(), g.fanouts.begin(), g.fanouts.end());
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  for (const auto& adj : adjacency_) edges_ += adj.size();
  edges_ /= 2;
}

std::vector<std::uint32_t> bfs_within(const UndirectedGraph& graph,
                                      GateId source, std::uint32_t radius) {
  std::vector<std::uint32_t> dist(graph.vertex_count(), kUnreached);
  dist[source] = 0;
  std::deque<GateId> queue{source};
  while (!queue.empty()) {
    const GateId u = queue.front();
    queue.pop_front();
    if (dist[u] >= radius) continue;
    for (const GateId v : graph.neighbors(u)) {
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace iddq::netlist
