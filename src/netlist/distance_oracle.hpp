// DistanceOracle: bounded-radius all-pairs hop distances.
//
// Implements the separation parameter of section 3.3:
//
//   S(g_i, g_j) = hop distance between g_i and g_j in the undirected circuit
//                 graph, saturated to rho when the distance exceeds rho or no
//                 path exists.
//
// (The paper phrases the metric as "the minimum number of nodes traversed";
// we use hop count — adjacent gates have S = 1 — which preserves the paper's
// two stated properties: S decreases as connectivity increases and is minimal
// on a clique, while keeping S(M) strictly positive so c3 = log(S) is always
// defined.)
//
// The oracle precomputes, for every gate, the sorted list of gates strictly
// closer than rho; everything else is rho by definition. Queries are
// O(log degree_rho); module sums are computed incrementally by the
// separation estimator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/graph.hpp"
#include "netlist/netlist.hpp"

namespace iddq::netlist {

class DistanceOracle {
 public:
  struct Entry {
    GateId gate;
    std::uint8_t distance;  // in [1, rho-1]
  };

  /// Builds the oracle with saturation distance `rho` (>= 1).
  DistanceOracle(const Netlist& nl, std::uint32_t rho);

  /// Saturation distance.
  [[nodiscard]] std::uint32_t rho() const noexcept { return rho_; }

  /// Separation of two distinct gates, in [1, rho].
  [[nodiscard]] std::uint32_t separation(GateId a, GateId b) const;

  /// Gates strictly closer than rho to `g` (excluding g itself), sorted by id.
  [[nodiscard]] std::span<const Entry> near(GateId g) const {
    return near_[g];
  }

  /// Total number of stored (gate, distance) entries, for memory accounting.
  [[nodiscard]] std::size_t entry_count() const noexcept;

 private:
  std::uint32_t rho_;
  std::vector<std::vector<Entry>> near_;
};

}  // namespace iddq::netlist
