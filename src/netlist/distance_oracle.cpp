#include "netlist/distance_oracle.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iddq::netlist {

DistanceOracle::DistanceOracle(const Netlist& nl, std::uint32_t rho)
    : rho_(rho) {
  require(rho >= 1, "DistanceOracle: rho must be >= 1");
  const UndirectedGraph graph(nl);
  near_.resize(nl.gate_count());
  if (rho_ == 1) return;  // every pair saturates; nothing to store
  for (GateId g = 0; g < nl.gate_count(); ++g) {
    const auto dist = bfs_within(graph, g, rho_ - 1);
    auto& list = near_[g];
    for (GateId v = 0; v < dist.size(); ++v) {
      if (v == g || dist[v] == kUnreached) continue;
      list.push_back(Entry{v, static_cast<std::uint8_t>(dist[v])});
    }
    // bfs_within visits in id order per level; re-sort by id for binary search.
    std::sort(list.begin(), list.end(),
              [](const Entry& a, const Entry& b) { return a.gate < b.gate; });
    list.shrink_to_fit();
  }
}

std::uint32_t DistanceOracle::separation(GateId a, GateId b) const {
  IDDQ_ASSERT(a < near_.size() && b < near_.size());
  IDDQ_ASSERT(a != b);
  const auto& list = near_[a];
  const auto it = std::lower_bound(
      list.begin(), list.end(), b,
      [](const Entry& e, GateId id) { return e.gate < id; });
  if (it != list.end() && it->gate == b) return it->distance;
  return rho_;
}

std::size_t DistanceOracle::entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& list : near_) n += list.size();
  return n;
}

}  // namespace iddq::netlist
