// Circuit specs: builtin generator names and .bench files behind one call.
//
// The CLI, the batch runner, and the examples all accept a "circuit spec":
// either one of the builtin generators (c17 plus the six Table 1 stand-ins)
// or a path to an ISCAS85 .bench netlist. This helper centralizes the
// resolution — including the error UX: a spec that *looks like* a builtin
// name but is not one (e.g. "c432") reports the valid builtin list instead
// of a confusing file-open failure.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::netlist {

/// Names of the builtin generator circuits, sorted ("c17", "c1908", ...).
[[nodiscard]] std::vector<std::string> builtin_circuit_names();

/// True when `spec` (case-insensitive) names a builtin generator.
[[nodiscard]] bool is_builtin_circuit(std::string_view spec);

/// Loads a circuit spec: a builtin generator name (case-insensitive) or a
/// .bench file path. Throws iddq::Error with the valid builtin list when
/// the spec looks like a generator name but is unknown, and the usual
/// parse/IO errors for file specs.
[[nodiscard]] Netlist load_circuit(const std::string& spec);

}  // namespace iddq::netlist
