#include "netlist/gate.hpp"

#include "support/strings.hpp"

namespace iddq::netlist {

std::string_view to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "input";
    case GateKind::kBuf: return "buf";
    case GateKind::kNot: return "not";
    case GateKind::kAnd: return "and";
    case GateKind::kNand: return "nand";
    case GateKind::kOr: return "or";
    case GateKind::kNor: return "nor";
    case GateKind::kXor: return "xor";
    case GateKind::kXnor: return "xnor";
  }
  return "?";
}

bool gate_kind_from_string(std::string_view word, GateKind& out) {
  const std::string w = str::to_lower(word);
  if (w == "input") { out = GateKind::kInput; return true; }
  if (w == "buf" || w == "buff") { out = GateKind::kBuf; return true; }
  if (w == "not" || w == "inv") { out = GateKind::kNot; return true; }
  if (w == "and") { out = GateKind::kAnd; return true; }
  if (w == "nand") { out = GateKind::kNand; return true; }
  if (w == "or") { out = GateKind::kOr; return true; }
  if (w == "nor") { out = GateKind::kNor; return true; }
  if (w == "xor") { out = GateKind::kXor; return true; }
  if (w == "xnor") { out = GateKind::kXnor; return true; }
  return false;
}

}  // namespace iddq::netlist
