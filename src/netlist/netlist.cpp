#include "netlist/netlist.hpp"

#include "support/error.hpp"

namespace iddq::netlist {

bool Netlist::is_primary_output(GateId id) const {
  IDDQ_ASSERT(id < gates_.size());
  return is_output_[id];
}

std::optional<GateId> Netlist::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

GateId Netlist::at(std::string_view name) const {
  const auto id = find(name);
  if (!id)
    throw LookupError("netlist '" + name_ + "': no gate named '" +
                      std::string(name) + "'");
  return *id;
}

}  // namespace iddq::netlist
