#include "netlist/levelize.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iddq::netlist {

std::vector<GateId> topological_order(const Netlist& nl) {
  const std::size_t n = nl.gate_count();
  std::vector<std::size_t> pending(n, 0);
  std::vector<GateId> order;
  order.reserve(n);
  std::vector<GateId> ready;
  for (GateId id = 0; id < n; ++id) {
    pending[id] = nl.gate(id).fanins.size();
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const GateId out : nl.gate(id).fanouts) {
      IDDQ_ASSERT(pending[out] > 0);
      if (--pending[out] == 0) ready.push_back(out);
    }
  }
  IDDQ_ASSERT(order.size() == n);  // build() guarantees acyclicity
  return order;
}

bool is_acyclic(const Netlist& nl) {
  const std::size_t n = nl.gate_count();
  std::vector<std::size_t> pending(n, 0);
  std::vector<GateId> ready;
  std::size_t seen = 0;
  for (GateId id = 0; id < n; ++id) {
    pending[id] = nl.gate(id).fanins.size();
    if (pending[id] == 0) ready.push_back(id);
  }
  while (!ready.empty()) {
    const GateId id = ready.back();
    ready.pop_back();
    ++seen;
    for (const GateId out : nl.gate(id).fanouts)
      if (--pending[out] == 0) ready.push_back(out);
  }
  return seen == n;
}

Levels levelize(const Netlist& nl) {
  const std::size_t n = nl.gate_count();
  Levels lv;
  lv.depth.assign(n, 0);
  lv.min_depth.assign(n, 0);
  for (const GateId id : topological_order(nl)) {
    const Gate& g = nl.gate(id);
    if (g.fanins.empty()) continue;  // primary input
    std::size_t dmax = 0;
    std::size_t dmin = static_cast<std::size_t>(-1);
    for (const GateId f : g.fanins) {
      dmax = std::max(dmax, lv.depth[f]);
      dmin = std::min(dmin, lv.min_depth[f]);
    }
    lv.depth[id] = dmax + 1;
    lv.min_depth[id] = dmin + 1;
    lv.max_depth = std::max(lv.max_depth, lv.depth[id]);
  }
  return lv;
}

}  // namespace iddq::netlist
