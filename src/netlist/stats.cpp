#include "netlist/stats.hpp"

#include <algorithm>
#include <ostream>

#include "netlist/levelize.hpp"

namespace iddq::netlist {

NetlistStats compute_stats(const Netlist& nl) {
  NetlistStats s;
  s.inputs = nl.primary_inputs().size();
  s.outputs = nl.primary_outputs().size();
  s.logic_gates = nl.logic_gate_count();
  s.max_depth = levelize(nl).max_depth;
  std::size_t fanin_sum = 0;
  std::size_t fanout_sum = 0;
  for (const auto& g : nl.gates()) {
    s.by_kind[static_cast<std::size_t>(g.kind)]++;
    fanout_sum += g.fanouts.size();
    s.max_fanout = std::max(s.max_fanout, g.fanouts.size());
    if (is_logic(g.kind)) fanin_sum += g.fanins.size();
  }
  if (s.logic_gates > 0)
    s.avg_fanin = static_cast<double>(fanin_sum) / static_cast<double>(s.logic_gates);
  if (nl.gate_count() > 0)
    s.avg_fanout =
        static_cast<double>(fanout_sum) / static_cast<double>(nl.gate_count());
  return s;
}

void print_stats(std::ostream& os, const Netlist& nl) {
  const NetlistStats s = compute_stats(nl);
  os << nl.name() << ": " << s.inputs << " PI, " << s.outputs << " PO, "
     << s.logic_gates << " gates, depth " << s.max_depth << ", avg fanin "
     << s.avg_fanin << ", max fanout " << s.max_fanout << '\n';
  os << "  kinds:";
  for (std::size_t k = 0; k < kGateKindCount; ++k) {
    if (s.by_kind[k] == 0) continue;
    os << ' ' << to_string(static_cast<GateKind>(k)) << '=' << s.by_kind[k];
  }
  os << '\n';
}

}  // namespace iddq::netlist
