// Gate model: the vertex type of the circuit graph.
//
// The CUT is modelled as in the paper: a directed graph C = (G, T) where G is
// the set of gates and T the connections among them (section 2). Primary
// inputs are represented as gates of kind Input so that every signal has a
// defining vertex; they are *not* eligible for partitioning (only logic gates
// are grouped into BIC-sensor modules).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iddq::netlist {

/// Dense gate identifier; index into Netlist::gates().
using GateId = std::uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kNoGate = static_cast<GateId>(-1);

/// Gate function, following the ISCAS85 .bench vocabulary.
enum class GateKind : std::uint8_t {
  kInput,  // primary input pad
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
};

/// Number of distinct GateKind values (for table sizing).
inline constexpr std::size_t kGateKindCount = 9;

/// Lower-case .bench keyword for a kind ("input", "nand", ...).
[[nodiscard]] std::string_view to_string(GateKind kind);

/// Parses a .bench keyword (case-insensitive). Throws iddq::ParseError-free
/// variant: returns false when the keyword is unknown.
[[nodiscard]] bool gate_kind_from_string(std::string_view word, GateKind& out);

/// True for every kind except kInput.
[[nodiscard]] constexpr bool is_logic(GateKind kind) {
  return kind != GateKind::kInput;
}

/// True when the gate function is an inverting one (NOT/NAND/NOR/XNOR).
[[nodiscard]] constexpr bool is_inverting(GateKind kind) {
  return kind == GateKind::kNot || kind == GateKind::kNand ||
         kind == GateKind::kNor || kind == GateKind::kXnor;
}

/// A single vertex of the circuit graph.
struct Gate {
  GateKind kind = GateKind::kInput;
  std::string name;
  std::vector<GateId> fanins;
  std::vector<GateId> fanouts;

  [[nodiscard]] std::size_t fanin_count() const noexcept {
    return fanins.size();
  }
  [[nodiscard]] std::size_t fanout_count() const noexcept {
    return fanouts.size();
  }
};

}  // namespace iddq::netlist
