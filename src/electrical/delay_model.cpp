#include "electrical/delay_model.hpp"

#include <cmath>

#include "support/error.hpp"

namespace iddq::elec {

namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kTiny = 1e-12;

struct Waveform {
  // v_out(t) = alpha * exp(lambda1 * t) + beta * expl(lambda2 * t)
  double lambda1 = 0.0;
  double lambda2 = 0.0;
  double alpha = 0.0;
  double beta = 0.0;

  [[nodiscard]] double at(double t_ps) const {
    return alpha * std::exp(lambda1 * t_ps) + beta * std::exp(lambda2 * t_ps);
  }
};

Waveform solve(const DelayModelInput& in) {
  const double a = 1.0 / (in.rg_kohm * in.cg_ff);
  const double b = static_cast<double>(in.n) / (in.rg_kohm * in.cs_ff);
  const double c = 1.0 / (in.rs_kohm * in.cs_ff);
  const double tr = -(a + b + c);
  const double det = a * c;
  // disc = (a-c)^2 + b^2 + 2ab + 2bc > 0: roots are real and distinct.
  const double disc = tr * tr - 4.0 * det;
  IDDQ_ASSERT(disc > 0.0);
  const double root = std::sqrt(disc);
  Waveform w;
  w.lambda1 = (tr + root) / 2.0;  // slow pole
  w.lambda2 = (tr - root) / 2.0;  // fast pole
  // v_out(0) = 1, v_out'(0) = a * (v_rail(0) - v_out(0)) = -a.
  w.alpha = (-a - w.lambda2) / (w.lambda1 - w.lambda2);
  w.beta = 1.0 - w.alpha;
  return w;
}

void validate(const DelayModelInput& in) {
  require(in.cg_ff > 0.0 && in.rg_kohm > 0.0,
          "delay model: Cg and Rg must be positive");
  require(in.rs_kohm >= 0.0 && in.cs_ff >= 0.0,
          "delay model: Rs and Cs must be non-negative");
  require(in.n >= 1, "delay model: n must be >= 1");
}

/// Brackets the 50% crossing. The static-divider delay is the quasi-static
/// bound; double past it defensively for extreme pole splits. Returns the
/// upper bound (the lower bound is always 0).
double bracket_hi(const Waveform& w, double quasi_static_ps) {
  double hi = quasi_static_ps;
  int guard = 0;
  while (w.at(hi) > 0.5 && guard++ < 64) hi *= 2.0;
  IDDQ_ASSERT(w.at(hi) <= 0.5);
  return hi;
}

/// Safeguarded Newton on the analytic waveform: solves v(t) = 0.5 on
/// (0, hi] to ~machine precision. The waveform is strictly decreasing
/// (v'(0) = -a < 0 and the faster-decaying positive term of v' can never
/// overtake the slower negative one), so the bracket [blo, bhi] shrinks
/// monotonically and any Newton step that escapes it falls back to its
/// midpoint. Returns false when the iteration fails to settle (the caller
/// then evaluates every refinement decision directly).
bool newton_crossing(const Waveform& w, double hi, double& t_cross) {
  double blo = 0.0;
  double bhi = hi;
  double t = 0.5 * (blo + bhi);
  for (int i = 0; i < 80; ++i) {
    const double e1 = std::exp(w.lambda1 * t);
    const double e2 = std::exp(w.lambda2 * t);
    const double v = w.alpha * e1 + w.beta * e2;
    const double dv =
        w.alpha * w.lambda1 * e1 + w.beta * w.lambda2 * e2;
    if (v > 0.5)
      blo = t;
    else
      bhi = t;
    double next = dv < 0.0 ? t - (v - 0.5) / dv : 0.5 * (blo + bhi);
    if (!(next > blo && next < bhi)) next = 0.5 * (blo + bhi);
    if (std::abs(next - t) <= 1e-15 * hi) {
      t_cross = next;
      return true;
    }
    t = next;
  }
  return false;
}

/// The historical refinement, replayed: identical bracket, identical
/// midpoint sequence, identical termination — but each "is the waveform
/// still above 50% at mid?" decision is settled by comparing mid against
/// the analytic crossing instead of evaluating two exponentials. Only
/// midpoints inside a guard band around the crossing (where floating-point
/// noise in the waveform could flip the comparison) evaluate the waveform
/// directly, which is what makes the replay bit-exact: outside the band
/// the waveform's strict monotonicity makes the comparison and the
/// evaluation provably agree, inside the band the evaluation IS the
/// decision. The band is ~1e-13 * hi wide — two orders above the combined
/// Newton/waveform noise floor (~1e-15 * hi) and an order below the
/// bisection's own 1e-12 * hi stopping width — so at most the last couple
/// of midpoints land in it.
double refine_replay(const Waveform& w, double hi, double t_cross,
                     bool have_cross) {
  const double margin = 1e-13 * hi;
  double lo = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    bool above;
    if (have_cross && mid < t_cross - margin)
      above = true;
    else if (have_cross && mid > t_cross + margin)
      above = false;
    else
      above = w.at(mid) > 0.5;
    if (above)
      lo = mid;
    else
      hi = mid;
    if ((hi - lo) <= 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double DelayDegradationModel::t50_ps(const DelayModelInput& in) {
  validate(in);
  const double t50_nominal = kLn2 * in.rg_kohm * in.cg_ff;
  if (in.rs_kohm <= kTiny) return t50_nominal;  // rail pinned to ground
  const double k = static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
  if (in.cs_ff <= kTiny) {
    // No rail capacitance: the rail is a static divider and the gate sees a
    // single pole with tau = Rg*Cg*(1 + n*Rs/Rg).
    return t50_nominal * (1.0 + k);
  }
  const Waveform w = solve(in);
  const double hi = bracket_hi(w, t50_nominal * (1.0 + k));
  double t_cross = 0.0;
  const bool have_cross = newton_crossing(w, hi, t_cross);
  return refine_replay(w, hi, t_cross, have_cross);
}

double DelayDegradationModel::t50_ps_bisect(const DelayModelInput& in) {
  validate(in);
  const double t50_nominal = kLn2 * in.rg_kohm * in.cg_ff;
  if (in.rs_kohm <= kTiny) return t50_nominal;  // rail pinned to ground
  const double k = static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
  if (in.cs_ff <= kTiny) return t50_nominal * (1.0 + k);
  const Waveform w = solve(in);
  double lo = 0.0;
  double hi = bracket_hi(w, t50_nominal * (1.0 + k));
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (w.at(mid) > 0.5)
      lo = mid;
    else
      hi = mid;
    if ((hi - lo) <= 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double DelayDegradationModel::delta(const DelayModelInput& in) {
  validate(in);
  const double t50_nominal = kLn2 * in.rg_kohm * in.cg_ff;
  const double d = t50_ps(in) / t50_nominal;
  // Numerical floor: the degraded gate is never faster than nominal.
  return d < 1.0 ? 1.0 : d;
}

double DelayDegradationModel::v_out_norm(const DelayModelInput& in,
                                         double t_ps) {
  validate(in);
  require(t_ps >= 0.0, "delay model: time must be non-negative");
  if (in.rs_kohm <= kTiny)
    return std::exp(-t_ps / (in.rg_kohm * in.cg_ff));
  if (in.cs_ff <= kTiny) {
    const double k = static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
    return std::exp(-t_ps / (in.rg_kohm * in.cg_ff * (1.0 + k)));
  }
  return solve(in).at(t_ps);
}

}  // namespace iddq::elec
