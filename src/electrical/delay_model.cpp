#include "electrical/delay_model.hpp"

#include <cmath>

#include "support/error.hpp"

namespace iddq::elec {

namespace {

constexpr double kLn2 = 0.6931471805599453;
constexpr double kTiny = 1e-12;

struct Waveform {
  // v_out(t) = alpha * exp(lambda1 * t) + beta * expl(lambda2 * t)
  double lambda1 = 0.0;
  double lambda2 = 0.0;
  double alpha = 0.0;
  double beta = 0.0;

  [[nodiscard]] double at(double t_ps) const {
    return alpha * std::exp(lambda1 * t_ps) + beta * std::exp(lambda2 * t_ps);
  }
};

Waveform solve(const DelayModelInput& in) {
  const double a = 1.0 / (in.rg_kohm * in.cg_ff);
  const double b = static_cast<double>(in.n) / (in.rg_kohm * in.cs_ff);
  const double c = 1.0 / (in.rs_kohm * in.cs_ff);
  const double tr = -(a + b + c);
  const double det = a * c;
  // disc = (a-c)^2 + b^2 + 2ab + 2bc > 0: roots are real and distinct.
  const double disc = tr * tr - 4.0 * det;
  IDDQ_ASSERT(disc > 0.0);
  const double root = std::sqrt(disc);
  Waveform w;
  w.lambda1 = (tr + root) / 2.0;  // slow pole
  w.lambda2 = (tr - root) / 2.0;  // fast pole
  // v_out(0) = 1, v_out'(0) = a * (v_rail(0) - v_out(0)) = -a.
  w.alpha = (-a - w.lambda2) / (w.lambda1 - w.lambda2);
  w.beta = 1.0 - w.alpha;
  return w;
}

void validate(const DelayModelInput& in) {
  require(in.cg_ff > 0.0 && in.rg_kohm > 0.0,
          "delay model: Cg and Rg must be positive");
  require(in.rs_kohm >= 0.0 && in.cs_ff >= 0.0,
          "delay model: Rs and Cs must be non-negative");
  require(in.n >= 1, "delay model: n must be >= 1");
}

}  // namespace

double DelayDegradationModel::t50_ps(const DelayModelInput& in) {
  validate(in);
  const double t50_nominal = kLn2 * in.rg_kohm * in.cg_ff;
  if (in.rs_kohm <= kTiny) return t50_nominal;  // rail pinned to ground
  const double k = static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
  if (in.cs_ff <= kTiny) {
    // No rail capacitance: the rail is a static divider and the gate sees a
    // single pole with tau = Rg*Cg*(1 + n*Rs/Rg).
    return t50_nominal * (1.0 + k);
  }
  const Waveform w = solve(in);
  // Bracket the 50% crossing. The static-divider delay is the quasi-static
  // bound; double past it defensively for extreme pole splits.
  double lo = 0.0;
  double hi = t50_nominal * (1.0 + k);
  int guard = 0;
  while (w.at(hi) > 0.5 && guard++ < 64) hi *= 2.0;
  IDDQ_ASSERT(w.at(hi) <= 0.5);
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (w.at(mid) > 0.5)
      lo = mid;
    else
      hi = mid;
    if ((hi - lo) <= 1e-12 * hi) break;
  }
  return 0.5 * (lo + hi);
}

double DelayDegradationModel::delta(const DelayModelInput& in) {
  validate(in);
  const double t50_nominal = kLn2 * in.rg_kohm * in.cg_ff;
  const double d = t50_ps(in) / t50_nominal;
  // Numerical floor: the degraded gate is never faster than nominal.
  return d < 1.0 ? 1.0 : d;
}

double DelayDegradationModel::v_out_norm(const DelayModelInput& in,
                                         double t_ps) {
  validate(in);
  require(t_ps >= 0.0, "delay model: time must be non-negative");
  if (in.rs_kohm <= kTiny)
    return std::exp(-t_ps / (in.rg_kohm * in.cg_ff));
  if (in.cs_ff <= kTiny) {
    const double k = static_cast<double>(in.n) * in.rs_kohm / in.rg_kohm;
    return std::exp(-t_ps / (in.rg_kohm * in.cg_ff * (1.0 + k)));
  }
  return solve(in).at(t_ps);
}

}  // namespace iddq::elec
