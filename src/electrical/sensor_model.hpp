// BIC sensor model (paper figure 1 and section 3.1).
//
// A BIC sensor is a sensing device + bypass MOS switch + detection circuitry
// inserted between a module's gates and ground ("virtual ground"). During
// normal operation the bypass switch (ON resistance R_s) carries the whole
// module current; the worst-case virtual-rail perturbation is
// R_s * iDD_max and is limited to a prescribed r (typ. 100..300 mV).
//
// Following the paper, the flow sizes each sensor at the limit:
//     R_s,i = r / iDD_max,i
// which satisfies the perturbation constraint by construction, and the area
// model is  A_i = A0 + A1 / R_s,i  (A0: detection circuitry; A1/R_s: sensing
// element + bypass device — a lower R_s needs a wider switch).
#pragma once

#include "support/error.hpp"

namespace iddq::elec {

struct SensorSpec {
  /// Maximum allowed virtual-rail perturbation r, in mV (paper: 100..300).
  double r_max_mv = 200.0;
  /// Detection-circuitry area A0, in technology units.
  double a0_area = 5.0e4;
  /// Sensing-element/bypass area coefficient A1, in units * kOhm.
  double a1_area_kohm = 2.0e4;
  /// Upper clamp on R_s (tiny modules would otherwise get absurdly weak,
  /// high-impedance switches), in kOhm.
  double rs_cap_kohm = 10.0;
  /// Detection circuitry parasitic capacitance on the virtual rail, in fF.
  double c_sensor_ff = 500.0;
  /// Decision time of the detection circuitry, in ps.
  double t_detect_ps = 2000.0;
  /// Detection threshold IDDQ_th: the minimum defective current that must
  /// be detected, in uA.
  double iddq_th_ua = 1.5;
  /// Required discriminability d = IDDQ_th / IDDQ_nd (paper: typically 10).
  double d_min = 10.0;

  void validate() const {
    require(r_max_mv > 0.0, "sensor: r_max must be positive");
    require(a0_area >= 0.0 && a1_area_kohm > 0.0, "sensor: bad area model");
    require(rs_cap_kohm > 0.0, "sensor: rs cap must be positive");
    require(iddq_th_ua > 0.0, "sensor: IDDQ threshold must be positive");
    require(d_min > 1.0, "sensor: discriminability must exceed 1");
  }
};

/// Bypass switch sizing R_s,i = min(r / iDD_max, cap). iDD_max <= 0 (an
/// empty module) yields the cap.
[[nodiscard]] double sensor_rs_kohm(const SensorSpec& spec,
                                    double idd_max_ua);

/// Sensor area A = A0 + A1 / R_s.
[[nodiscard]] double sensor_area(const SensorSpec& spec, double rs_kohm);

/// Sensor time constant tau = R_s * C_s (C_s: module virtual-rail parasitic
/// capacitance including the sensor's own c_sensor_ff), in ps.
[[nodiscard]] double sensor_tau_ps(double rs_kohm, double cs_ff);

/// Worst-case virtual-rail perturbation R_s * iDD_max, in mV.
[[nodiscard]] double rail_perturbation_mv(double rs_kohm, double idd_max_ua);

/// Maximum fault-free module leakage permitted by the discriminability
/// constraint: IDDQ_nd <= IDDQ_th / d, in uA.
[[nodiscard]] double leakage_cap_ua(const SensorSpec& spec);

}  // namespace iddq::elec
