// Settling-time model Delta(tau) (paper section 3.4).
//
// After a test vector is applied, the sensor must wait for the transient iDD
// to decay to the quiescent level before switching the bypass off and
// sensing. The paper estimates this "iDD decay time plus sensing time"
// Delta(tau_s,i) from SPICE-level simulations as a function of the sensor
// time constant tau_s,i = R_s,i * C_s,i.
//
// We reproduce the methodology: SettlingModel::calibrate() runs transient
// simulations of the current decay over a grid of time constants and current
// ratios, then serves queries by interpolating the simulated table (log-
// linear in the current ratio, linear in tau), adding the detection time.
#pragma once

#include <vector>

namespace iddq::elec {

class SettlingModel {
 public:
  /// Calibrates the table. `t_detect_ps` is added to every query result.
  /// `ratio_hi` bounds the largest ipeak/IDDQ_th ratio the table covers.
  [[nodiscard]] static SettlingModel calibrate(double t_detect_ps,
                                               double ratio_hi = 1.0e6);

  /// Delta(tau): decay from `i0_ua` to `i_th_ua` with time constant `tau_ps`
  /// plus the detection time, in ps. i0 <= i_th costs only detection time.
  [[nodiscard]] double delta_ps(double tau_ps, double i0_ua,
                                double i_th_ua) const;

  /// The calibrated decay-constant estimate k in Delta = t_detect + k*tau*
  /// ln(i0/ith); exposed for tests (the analytic value is 1).
  [[nodiscard]] double decay_coefficient() const noexcept { return k_; }

  [[nodiscard]] double t_detect_ps() const noexcept { return t_detect_ps_; }

 private:
  SettlingModel() = default;

  double t_detect_ps_ = 0.0;
  double k_ = 1.0;  // fitted multiplier on tau * ln(i0/ith)
  std::vector<double> log_ratio_grid_;
  std::vector<double> unit_decay_ps_;  // decay time at tau = 1 ps per ratio
};

}  // namespace iddq::elec
