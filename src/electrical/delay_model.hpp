// Second-order gate-delay degradation model (paper section 3.2).
//
// With a BIC sensor in the ground path, a switching gate discharges its
// output capacitance C_g through its pull-down network (average ON
// resistance R_g) into the virtual rail, which is loaded by the parasitic
// capacitance C_s and tied to ground through the bypass switch R_s shared by
// the n(t) gates switching simultaneously:
//
//   C_g dV_out/dt  = -(V_out - V_rail) / R_g              (per gate)
//   C_s dV_rail/dt =  n (V_out - V_rail) / R_g - V_rail / R_s
//
// The paper's gate delay degradation factor is the ratio of 50%-crossing
// times:  delta(g, t) = t_50(R_s, C_s, n(t)) / t_50(R_s = 0), applied to the
// nominal delay as  D_BIC(g, t) = D(g) * delta(g, t).
//
// The 2x2 linear system is solved in closed form via its eigenvalues (both
// real and negative). The 50% crossing is located analytically: a
// safeguarded Newton iteration on the closed-form waveform converges to the
// crossing at machine precision in a handful of exp() evaluations, and a
// comparison-driven replay of the historical bracket-and-bisect refinement
// then reproduces the reference bisection's result BIT-FOR-BIT (each
// bisection decision is settled by comparing the midpoint against the
// analytic crossing; only midpoints inside a guard band around the crossing
// — the last couple of iterations — fall back to evaluating the waveform).
// t50_ps_bisect() keeps the plain bracket-and-bisect path callable as the
// bit-identity reference for tests and bench/perf_micro.cpp. Verified
// properties (see tests): t50_ps == t50_ps_bisect bit-for-bit across the
// operating range, delta >= 1, delta -> 1 as R_s -> 0, monotone
// non-decreasing in n and in R_s, and agreement with a direct RK4
// integration of the ODE system.
#pragma once

#include <cstdint>

namespace iddq::elec {

struct DelayModelInput {
  double rs_kohm = 0.0;  // bypass switch ON resistance
  double cs_ff = 0.0;    // virtual-rail parasitic capacitance
  double cg_ff = 1.0;    // switching gate's output capacitance
  double rg_kohm = 1.0;  // gate discharge resistance
  std::uint32_t n = 1;   // simultaneously switching gates n(t)
};

class DelayDegradationModel {
 public:
  /// Degradation factor delta >= 1 for the given operating point.
  [[nodiscard]] static double delta(const DelayModelInput& in);

  /// 50%-crossing time of V_out starting from VDD, in ps. Analytic
  /// (Newton-seeded) crossing with a comparison-driven refinement replay;
  /// bit-identical to t50_ps_bisect at a fraction of its exp() count.
  [[nodiscard]] static double t50_ps(const DelayModelInput& in);

  /// Historical bracket-and-bisect 50%-crossing: doubles the quasi-static
  /// bound until the waveform falls below 50%, then bisects with up to 100
  /// waveform evaluations. Kept as the bit-identity reference for t50_ps
  /// (tests/electrical/test_delay_model.cpp pins t50_ps == t50_ps_bisect;
  /// bench/perf_micro.cpp measures the gap).
  [[nodiscard]] static double t50_ps_bisect(const DelayModelInput& in);

  /// Analytic output waveform V_out(t)/VDD (exposed for the RK4 cross-check
  /// tests and the transient-simulator validation).
  [[nodiscard]] static double v_out_norm(const DelayModelInput& in,
                                         double t_ps);
};

}  // namespace iddq::elec
