#include "electrical/sensor_model.hpp"

#include <algorithm>

namespace iddq::elec {

double sensor_rs_kohm(const SensorSpec& spec, double idd_max_ua) {
  if (idd_max_ua <= 0.0) return spec.rs_cap_kohm;
  return std::min(spec.r_max_mv / idd_max_ua, spec.rs_cap_kohm);
}

double sensor_area(const SensorSpec& spec, double rs_kohm) {
  IDDQ_ASSERT(rs_kohm > 0.0);
  return spec.a0_area + spec.a1_area_kohm / rs_kohm;
}

double sensor_tau_ps(double rs_kohm, double cs_ff) {
  IDDQ_ASSERT(rs_kohm >= 0.0 && cs_ff >= 0.0);
  return rs_kohm * cs_ff;
}

double rail_perturbation_mv(double rs_kohm, double idd_max_ua) {
  return rs_kohm * idd_max_ua;
}

double leakage_cap_ua(const SensorSpec& spec) {
  return spec.iddq_th_ua / spec.d_min;
}

}  // namespace iddq::elec
