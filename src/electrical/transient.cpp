#include "electrical/transient.hpp"

#include <cmath>

#include "support/error.hpp"

namespace iddq::elec {

namespace {

struct State {
  double v_out;
  double v_rail;
};

State derivative(const DelayModelInput& in, const State& s) {
  const double a = 1.0 / (in.rg_kohm * in.cg_ff);
  const double b = static_cast<double>(in.n) / (in.rg_kohm * in.cs_ff);
  const double c = 1.0 / (in.rs_kohm * in.cs_ff);
  return State{a * (s.v_rail - s.v_out),
               b * (s.v_out - s.v_rail) - c * s.v_rail};
}

}  // namespace

std::vector<TransientSample> simulate_discharge(const DelayModelInput& in,
                                                double vdd_mv, double dt_ps,
                                                std::size_t steps) {
  require(in.cs_ff > 0.0 && in.rs_kohm > 0.0,
          "simulate_discharge: needs Cs > 0 and Rs > 0 (use the analytic "
          "model for the degenerate cases)");
  require(dt_ps > 0.0 && steps > 0, "simulate_discharge: bad step parameters");
  std::vector<TransientSample> out;
  out.reserve(steps + 1);
  State s{vdd_mv, 0.0};
  out.push_back({0.0, s.v_out, s.v_rail});
  for (std::size_t i = 1; i <= steps; ++i) {
    const State k1 = derivative(in, s);
    const State s2{s.v_out + 0.5 * dt_ps * k1.v_out,
                   s.v_rail + 0.5 * dt_ps * k1.v_rail};
    const State k2 = derivative(in, s2);
    const State s3{s.v_out + 0.5 * dt_ps * k2.v_out,
                   s.v_rail + 0.5 * dt_ps * k2.v_rail};
    const State k3 = derivative(in, s3);
    const State s4{s.v_out + dt_ps * k3.v_out, s.v_rail + dt_ps * k3.v_rail};
    const State k4 = derivative(in, s4);
    s.v_out += dt_ps / 6.0 *
               (k1.v_out + 2.0 * k2.v_out + 2.0 * k3.v_out + k4.v_out);
    s.v_rail += dt_ps / 6.0 *
                (k1.v_rail + 2.0 * k2.v_rail + 2.0 * k3.v_rail + k4.v_rail);
    out.push_back({static_cast<double>(i) * dt_ps, s.v_out, s.v_rail});
  }
  return out;
}

double crossing_time_ps(const std::vector<TransientSample>& tr,
                        double level_mv) {
  for (std::size_t i = 1; i < tr.size(); ++i) {
    if (tr[i].v_out_mv <= level_mv && tr[i - 1].v_out_mv > level_mv) {
      const double frac = (tr[i - 1].v_out_mv - level_mv) /
                          (tr[i - 1].v_out_mv - tr[i].v_out_mv);
      return tr[i - 1].t_ps + frac * (tr[i].t_ps - tr[i - 1].t_ps);
    }
  }
  return -1.0;
}

double simulate_decay_time_ps(double i0_ua, double i_th_ua, double tau_ps,
                              double dt_ps) {
  require(tau_ps > 0.0 && dt_ps > 0.0, "simulate_decay: bad time constants");
  require(i_th_ua > 0.0, "simulate_decay: threshold must be positive");
  if (i0_ua <= i_th_ua) return -1.0;
  double i = i0_ua;
  double t = 0.0;
  // RK4 on i' = -i/tau (scalar); the analytic answer is tau*ln(i0/ith) and
  // the tests verify agreement.
  const double max_t = tau_ps * 80.0;
  while (i > i_th_ua && t < max_t) {
    const double k1 = -i / tau_ps;
    const double k2 = -(i + 0.5 * dt_ps * k1) / tau_ps;
    const double k3 = -(i + 0.5 * dt_ps * k2) / tau_ps;
    const double k4 = -(i + dt_ps * k3) / tau_ps;
    const double i_next = i + dt_ps / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
    if (i_next <= i_th_ua) {
      const double frac = (i - i_th_ua) / (i - i_next);
      return t + frac * dt_ps;
    }
    i = i_next;
    t += dt_ps;
  }
  return t;
}

}  // namespace iddq::elec
