#include "electrical/settling.hpp"

#include <algorithm>
#include <cmath>

#include "electrical/transient.hpp"
#include "support/error.hpp"
#include "support/math.hpp"

namespace iddq::elec {

SettlingModel SettlingModel::calibrate(double t_detect_ps, double ratio_hi) {
  require(t_detect_ps >= 0.0, "settling: detection time must be >= 0");
  require(ratio_hi > 1.0, "settling: ratio_hi must exceed 1");
  SettlingModel m;
  m.t_detect_ps_ = t_detect_ps;

  // Simulate the decay at tau = 1 ps over a geometric grid of current
  // ratios; linearity in tau is exact for a first-order decay, which the
  // tests confirm against the simulator at other tau values.
  const int points = 24;
  const double log_hi = std::log(ratio_hi);
  std::vector<double> log_ratios;
  std::vector<double> times;
  for (int i = 1; i <= points; ++i) {
    const double lr = log_hi * static_cast<double>(i) /
                      static_cast<double>(points);
    const double ratio = std::exp(lr);
    const double t =
        simulate_decay_time_ps(/*i0_ua=*/ratio, /*i_th_ua=*/1.0,
                               /*tau_ps=*/1.0, /*dt_ps=*/1.0e-3);
    IDDQ_ASSERT(t >= 0.0);
    log_ratios.push_back(lr);
    times.push_back(t);
  }
  m.log_ratio_grid_ = log_ratios;
  m.unit_decay_ps_ = times;
  // Fit decay time ~ k * ln(ratio) (intercept discarded; it is ~0).
  const auto [intercept, slope] = math::linear_fit(log_ratios, times);
  (void)intercept;
  m.k_ = slope;
  return m;
}

double SettlingModel::delta_ps(double tau_ps, double i0_ua,
                               double i_th_ua) const {
  require(tau_ps >= 0.0, "settling: tau must be >= 0");
  require(i_th_ua > 0.0, "settling: threshold must be positive");
  if (i0_ua <= i_th_ua || tau_ps == 0.0) return t_detect_ps_;
  const double lr = std::log(i0_ua / i_th_ua);
  // Interpolate the simulated table; extrapolate with the fitted slope
  // beyond its range.
  double unit_time = 0.0;
  if (lr <= log_ratio_grid_.front()) {
    unit_time = unit_decay_ps_.front() * lr / log_ratio_grid_.front();
  } else if (lr >= log_ratio_grid_.back()) {
    unit_time = unit_decay_ps_.back() + k_ * (lr - log_ratio_grid_.back());
  } else {
    const auto it = std::lower_bound(log_ratio_grid_.begin(),
                                     log_ratio_grid_.end(), lr);
    const std::size_t hi = static_cast<std::size_t>(
        std::distance(log_ratio_grid_.begin(), it));
    const std::size_t lo = hi - 1;
    const double frac = (lr - log_ratio_grid_[lo]) /
                        (log_ratio_grid_[hi] - log_ratio_grid_[lo]);
    unit_time =
        unit_decay_ps_[lo] + frac * (unit_decay_ps_[hi] - unit_decay_ps_[lo]);
  }
  return t_detect_ps_ + unit_time * tau_ps;
}

}  // namespace iddq::elec
