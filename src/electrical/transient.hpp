// Small fixed-step RK4 integrator for the electrical cross-checks.
//
// Plays the role SPICE plays in the paper: the settling model (settling.hpp)
// is *calibrated* against transient simulations rather than hard-coding the
// analytic answer, and the closed-form delay-degradation model is verified
// against direct integration in the test suite.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "electrical/delay_model.hpp"

namespace iddq::elec {

/// One RK4 trajectory sample.
struct TransientSample {
  double t_ps = 0.0;
  double v_out_mv = 0.0;
  double v_rail_mv = 0.0;
};

/// Integrates the second-order discharge network of delay_model.hpp from
/// V_out = vdd_mv, V_rail = 0 for `steps` steps of `dt_ps`.
[[nodiscard]] std::vector<TransientSample> simulate_discharge(
    const DelayModelInput& in, double vdd_mv, double dt_ps, std::size_t steps);

/// First time at which v_out crosses below `level_mv` (linear interpolation
/// between samples); returns a negative value when the trajectory never
/// crosses within the simulated window.
[[nodiscard]] double crossing_time_ps(const std::vector<TransientSample>& tr,
                                      double level_mv);

/// Integrates an exponential current decay i' = -i/tau (the quiescent
/// settling of a module current toward its leakage floor) and returns the
/// time at which i(t) first falls below `i_th_ua`. Used by the settling-model
/// calibration. Returns a negative value when i0 <= i_th.
[[nodiscard]] double simulate_decay_time_ps(double i0_ua, double i_th_ua,
                                            double tau_ps, double dt_ps);

}  // namespace iddq::elec
