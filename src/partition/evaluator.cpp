#include "partition/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "electrical/delay_model.hpp"
#include "estimators/delay_estimator.hpp"
#include "estimators/leakage.hpp"
#include "netlist/levelize.hpp"
#include "estimators/separation.hpp"
#include "estimators/test_time.hpp"
#include "support/error.hpp"
#include "support/math.hpp"
#include "support/units.hpp"

namespace iddq::part {

namespace {

/// Key for deduplicating (cg, rg) pairs into dense type indices.
struct CgRgKey {
  double cg;
  double rg;
  friend bool operator==(const CgRgKey&, const CgRgKey&) = default;
};
struct CgRgHash {
  std::size_t operator()(const CgRgKey& k) const noexcept {
    const auto h1 = std::hash<double>{}(k.cg);
    const auto h2 = std::hash<double>{}(k.rg);
    return h1 ^ (h2 * 0x9E3779B97F4A7C15ull);
  }
};

}  // namespace

EvalContext::EvalContext(const netlist::Netlist& netlist,
                         const lib::CellLibrary& library,
                         elec::SensorSpec sensor_spec, CostWeights w,
                         std::uint32_t rho, double grid_bin_ps)
    : nl(netlist),
      cells(lib::bind_cells(netlist, library)),
      transition_times(netlist, cells, grid_bin_ps),
      oracle(netlist, rho),
      settling(elec::SettlingModel::calibrate(sensor_spec.t_detect_ps)),
      sensor(sensor_spec),
      weights(w) {
  sensor.validate();
  // Dense (cg, rg) type indexing for the delay-anchor cache.
  type_of.assign(nl.gate_count(), 0);
  std::unordered_map<CgRgKey, std::uint16_t, CgRgHash> index;
  for (const netlist::GateId id : nl.logic_gates()) {
    const CgRgKey key{cells[id].cout_ff, cells[id].rg_kohm};
    const auto [it, inserted] = index.emplace(
        key, static_cast<std::uint16_t>(type_cg_ff.size()));
    if (inserted) {
      type_cg_ff.push_back(key.cg);
      type_rg_kohm.push_back(key.rg);
    }
    type_of[id] = it->second;
  }
  type_count = type_cg_ff.size();
  d_nominal_ps = est::nominal_critical_path_ps(nl, cells);
  leak_cap_ua = elec::leakage_cap_ua(sensor);
}

PartitionEvaluator::PartitionEvaluator(const EvalContext& ctx,
                                       Partition partition)
    : ctx_(&ctx), partition_(std::move(partition)) {
  require(partition_.covers(ctx_->nl),
          "evaluator: partition must cover all logic gates with no empty "
          "module");
  rebuild_all();
}

void PartitionEvaluator::rebuild_all() {
  const std::size_t k = partition_.module_count();
  profiles_.assign(k, est::ModuleCurrentProfile(
                          ctx_->transition_times.grid_size()));
  leak_ua_.assign(k, 0.0);
  cvr_ff_.assign(k, 0.0);
  separation_.assign(k, 0.0);
  type_histogram_.assign(k, std::vector<std::uint32_t>(ctx_->type_count, 0));
  std::vector<std::uint32_t> module_of(partition_.gate_count(), kUnassigned);
  for (netlist::GateId g = 0; g < partition_.gate_count(); ++g)
    module_of[g] = partition_.module_of(g);
  for (std::uint32_t m = 0; m < k; ++m) {
    for (const netlist::GateId g : partition_.module(m)) {
      const auto& cell = ctx_->cells[g];
      profiles_[m].add_gate(ctx_->transition_times.at(g), cell.ipeak_ua);
      leak_ua_[m] += units::na_to_ua(cell.ileak_na);
      cvr_ff_[m] += cell.cvr_ff;
      type_histogram_[m][ctx_->type_of[g]]++;
    }
    separation_[m] = est::module_separation(ctx_->oracle, partition_.module(m),
                                            m, module_of);
  }
  delay_dirty_ = true;
}

void PartitionEvaluator::move_gate(netlist::GateId g, std::uint32_t target) {
  const std::uint32_t src = partition_.module_of(g);
  IDDQ_ASSERT(src != kUnassigned);
  IDDQ_ASSERT(target < partition_.module_count());
  if (src == target) return;

  const auto& cell = ctx_->cells[g];
  // Separation sums are updated while module_of still reflects the old
  // assignment (g not yet in target, still in src); the near-list scan is
  // inlined here to avoid materialising a module_of vector per move.
  const double rho = static_cast<double>(ctx_->oracle.rho());
  double sum_src = static_cast<double>(partition_.module_size(src) - 1) * rho;
  double sum_dst = static_cast<double>(partition_.module_size(target)) * rho;
  for (const auto& [neighbor, distance] : ctx_->oracle.near(g)) {
    const std::uint32_t nm = partition_.module_of(neighbor);
    if (nm == src)
      sum_src -= rho - static_cast<double>(distance);
    else if (nm == target)
      sum_dst -= rho - static_cast<double>(distance);
  }
  separation_[src] -= sum_src;
  separation_[target] += sum_dst;

  profiles_[src].remove_gate(ctx_->transition_times.at(g), cell.ipeak_ua);
  profiles_[target].add_gate(ctx_->transition_times.at(g), cell.ipeak_ua);
  leak_ua_[src] -= units::na_to_ua(cell.ileak_na);
  leak_ua_[target] += units::na_to_ua(cell.ileak_na);
  cvr_ff_[src] -= cell.cvr_ff;
  cvr_ff_[target] += cell.cvr_ff;
  const std::uint16_t type = ctx_->type_of[g];
  IDDQ_ASSERT(type_histogram_[src][type] > 0);
  type_histogram_[src][type]--;
  type_histogram_[target][type]++;

  partition_.move(g, target);
  if (partition_.module_size(src) == 0) erase_module(src);
  delay_dirty_ = true;
}

void PartitionEvaluator::erase_module(std::uint32_t m) {
  const std::uint32_t moved_from = partition_.erase_empty_module(m);
  const std::uint32_t last = static_cast<std::uint32_t>(profiles_.size() - 1);
  IDDQ_ASSERT(moved_from == last);
  if (m != last) {
    profiles_[m] = std::move(profiles_[last]);
    leak_ua_[m] = leak_ua_[last];
    cvr_ff_[m] = cvr_ff_[last];
    separation_[m] = separation_[last];
    type_histogram_[m] = std::move(type_histogram_[last]);
  }
  profiles_.pop_back();
  leak_ua_.pop_back();
  cvr_ff_.pop_back();
  separation_.pop_back();
  type_histogram_.pop_back();
}

double PartitionEvaluator::module_rs_kohm(std::uint32_t m) const {
  return elec::sensor_rs_kohm(ctx_->sensor, profiles_[m].max_current_ua());
}

double PartitionEvaluator::module_cs_ff(std::uint32_t m) const {
  return cvr_ff_[m] + ctx_->sensor.c_sensor_ff;
}

double PartitionEvaluator::violation() const {
  double v = 0.0;
  for (const double leak : leak_ua_) {
    if (leak > ctx_->leak_cap_ua)
      v += (leak - ctx_->leak_cap_ua) / ctx_->leak_cap_ua;
  }
  return v;
}

void PartitionEvaluator::ensure_delay_fresh() {
  if (!delay_dirty_) return;
  const std::size_t k = partition_.module_count();
  // Worst-case degradation per (module, cell type): every gate of module m
  // is charged the module's peak simultaneity n_max,m — the paper's
  // pessimistic treatment of the time-grid functions delta(g, t). Note the
  // self-normalisation: with R_s = r / iDD_max and iDD_max ~ n_max * ipeak,
  // the product n_max * R_s ~ r / ipeak is partition-invariant, which is why
  // the paper's Table 1 shows (and our benches reproduce) essentially equal
  // delay overheads for different partitioning methods at equal K.
  std::vector<std::vector<double>> type_delta(
      k, std::vector<double>(ctx_->type_count, 1.0));
  for (std::uint32_t m = 0; m < k; ++m) {
    const double rs = module_rs_kohm(m);
    const double cs = module_cs_ff(m);
    const std::uint32_t n_max =
        std::max<std::uint32_t>(profiles_[m].max_switching(), 1);
    for (std::uint16_t t = 0; t < ctx_->type_count; ++t) {
      if (type_histogram_[m][t] == 0) continue;
      elec::DelayModelInput in;
      in.rs_kohm = rs;
      in.cs_ff = cs;
      in.cg_ff = ctx_->type_cg_ff[t];
      in.rg_kohm = ctx_->type_rg_kohm[t];
      in.n = n_max;
      type_delta[m][t] = elec::DelayDegradationModel::delta(in);
    }
  }
  std::vector<double> delta(ctx_->nl.gate_count(), 1.0);
  for (const netlist::GateId g : ctx_->nl.logic_gates()) {
    const std::uint32_t m = partition_.module_of(g);
    delta[g] = type_delta[m][ctx_->type_of[g]];
  }
  d_bic_ps_ = est::degraded_critical_path_ps(ctx_->nl, ctx_->cells, delta);

  settle_max_ps_ = 0.0;
  for (std::uint32_t m = 0; m < k; ++m) {
    const double tau =
        elec::sensor_tau_ps(module_rs_kohm(m), module_cs_ff(m));
    const double settle = ctx_->settling.delta_ps(
        tau, profiles_[m].max_current_ua(), ctx_->sensor.iddq_th_ua);
    settle_max_ps_ = std::max(settle_max_ps_, settle);
  }
  delay_dirty_ = false;
}

double PartitionEvaluator::d_bic_ps() {
  ensure_delay_fresh();
  return d_bic_ps_;
}

double PartitionEvaluator::total_sensor_area() {
  double area = 0.0;
  for (std::uint32_t m = 0; m < partition_.module_count(); ++m)
    area += elec::sensor_area(ctx_->sensor, module_rs_kohm(m));
  return area;
}

Costs PartitionEvaluator::costs() {
  ensure_delay_fresh();
  Costs c;
  c.c1 = std::log(std::max(total_sensor_area(), 1.0));
  c.c2 = (d_bic_ps_ - ctx_->d_nominal_ps) / ctx_->d_nominal_ps;
  double s_total = 0.0;
  for (const double s : separation_) s_total += s;
  c.c3 = std::log(std::max(s_total, 1.0));
  c.c4 = est::test_time_overhead(ctx_->d_nominal_ps, d_bic_ps_,
                                 settle_max_ps_);
  c.c5 = static_cast<double>(partition_.module_count());
  return c;
}

Fitness PartitionEvaluator::fitness() {
  return Fitness{violation(), costs().total(ctx_->weights)};
}

ModuleReport PartitionEvaluator::module_report(std::uint32_t m) {
  IDDQ_ASSERT(m < partition_.module_count());
  ModuleReport r;
  r.gates = partition_.module_size(m);
  r.idd_max_ua = profiles_[m].max_current_ua();
  r.leakage_ua = leak_ua_[m];
  r.discriminability =
      est::discriminability(ctx_->sensor.iddq_th_ua, leak_ua_[m]);
  r.rs_kohm = module_rs_kohm(m);
  r.cs_ff = module_cs_ff(m);
  r.tau_ps = elec::sensor_tau_ps(r.rs_kohm, r.cs_ff);
  r.area = elec::sensor_area(ctx_->sensor, r.rs_kohm);
  r.separation = separation_[m];
  r.rail_perturbation_mv = elec::rail_perturbation_mv(r.rs_kohm, r.idd_max_ua);
  r.settle_ps =
      ctx_->settling.delta_ps(r.tau_ps, r.idd_max_ua, ctx_->sensor.iddq_th_ua);
  return r;
}

void PartitionEvaluator::self_check() const {
  PartitionEvaluator fresh(*ctx_, partition_);
  for (std::uint32_t m = 0; m < partition_.module_count(); ++m) {
    // Switching counts are integers and must match exactly; the running
    // current sums accumulate floating-point rounding in a different order
    // than a fresh summation, so they are compared with a tolerance.
    const auto fresh_sw = fresh.profiles_[m].switching();
    const auto inc_sw = profiles_[m].switching();
    require(std::equal(fresh_sw.begin(), fresh_sw.end(), inc_sw.begin(),
                       inc_sw.end()),
            "self_check: switching-count profile mismatch");
    const auto fresh_i = fresh.profiles_[m].current_ua();
    const auto inc_i = profiles_[m].current_ua();
    for (std::size_t t = 0; t < fresh_i.size(); ++t)
      require(math::rel_diff(fresh_i[t], inc_i[t]) < 1e-9,
              "self_check: current profile mismatch");
    require(math::rel_diff(fresh.leak_ua_[m], leak_ua_[m]) < 1e-9,
            "self_check: leakage mismatch");
    require(math::rel_diff(fresh.cvr_ff_[m], cvr_ff_[m]) < 1e-9,
            "self_check: cvr mismatch");
    require(math::rel_diff(fresh.separation_[m], separation_[m]) < 1e-9,
            "self_check: separation mismatch");
    require(fresh.type_histogram_[m] == type_histogram_[m],
            "self_check: type histogram mismatch");
  }
}

}  // namespace iddq::part
