#include "partition/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "electrical/delay_model.hpp"
#include "estimators/delay_estimator.hpp"
#include "estimators/leakage.hpp"
#include "netlist/levelize.hpp"
#include "estimators/separation.hpp"
#include "estimators/test_time.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"
#include "support/math.hpp"
#include "support/units.hpp"

namespace iddq::part {

namespace {

/// Key for deduplicating (cg, rg) pairs into dense type indices.
struct CgRgKey {
  double cg;
  double rg;
  friend bool operator==(const CgRgKey&, const CgRgKey&) = default;
};
/// support/hash.hpp combiner over the IEEE bit patterns (-0.0 normalized),
/// so keys that compare equal always hash equal and a (cg, rg) pair cannot
/// split into two type indices.
struct CgRgHash {
  std::size_t operator()(const CgRgKey& k) const noexcept {
    Hash64 h;
    h.mix_double(k.cg);
    h.mix_double(k.rg);
    return static_cast<std::size_t>(h.value());
  }
};

}  // namespace

EvalContext::EvalContext(const netlist::Netlist& netlist,
                         const lib::CellLibrary& library,
                         elec::SensorSpec sensor_spec, CostWeights w,
                         std::uint32_t rho, double grid_bin_ps)
    : nl(netlist),
      cells(lib::bind_cells(netlist, library)),
      transition_times(netlist, cells, grid_bin_ps),
      oracle(netlist, rho),
      timing_graph(netlist, cells),
      settling(elec::SettlingModel::calibrate(sensor_spec.t_detect_ps)),
      sensor(sensor_spec),
      weights(w) {
  sensor.validate();
  // Dense (cg, rg) type indexing for the delay-anchor cache.
  type_of.assign(nl.gate_count(), 0);
  std::unordered_map<CgRgKey, std::uint16_t, CgRgHash> index;
  for (const netlist::GateId id : nl.logic_gates()) {
    const CgRgKey key{cells[id].cout_ff, cells[id].rg_kohm};
    const auto [it, inserted] = index.emplace(
        key, static_cast<std::uint16_t>(type_cg_ff.size()));
    if (inserted) {
      type_cg_ff.push_back(key.cg);
      type_rg_kohm.push_back(key.rg);
    }
    type_of[id] = it->second;
  }
  type_count = type_cg_ff.size();
  d_nominal_ps = est::nominal_critical_path_ps(nl, cells);
  leak_cap_ua = elec::leakage_cap_ua(sensor);
}

PartitionEvaluator::PartitionEvaluator(const EvalContext& ctx,
                                       Partition partition)
    : ctx_(&ctx),
      partition_(std::move(partition)),
      timing_(ctx.timing_graph) {
  require(partition_.covers(ctx_->nl),
          "evaluator: partition must cover all logic gates with no empty "
          "module");
  rebuild_all();
}

void PartitionEvaluator::rebuild_all() {
  const std::size_t k = partition_.module_count();
  profiles_.assign(k, est::ModuleCurrentProfile(
                          ctx_->transition_times.grid_size()));
  leak_ua_.assign(k, 0.0);
  cvr_ff_.assign(k, 0.0);
  separation_.assign(k, 0.0);
  type_histogram_.assign(k * ctx_->type_count, 0);
  std::vector<std::uint32_t> module_of(partition_.gate_count(), kUnassigned);
  for (netlist::GateId g = 0; g < partition_.gate_count(); ++g)
    module_of[g] = partition_.module_of(g);
  for (std::uint32_t m = 0; m < k; ++m) {
    const auto hist = hist_row(m);
    for (const netlist::GateId g : partition_.module(m)) {
      const auto& cell = ctx_->cells[g];
      profiles_[m].add_gate(ctx_->transition_times.at(g), cell.ipeak_ua);
      leak_ua_[m] += units::na_to_ua(cell.ileak_na);
      cvr_ff_[m] += cell.cvr_ff;
      hist[ctx_->type_of[g]]++;
    }
    separation_[m] = est::module_separation(ctx_->oracle, partition_.module(m),
                                            m, module_of);
  }
  type_delta_.assign(k * ctx_->type_count, 1.0);
  area_.assign(k, 0.0);
  settle_ps_.assign(k, 0.0);
  dirty_.assign(k, 1);
  any_dirty_ = true;
}

void PartitionEvaluator::mark_dirty(std::uint32_t m) {
  dirty_[m] = 1;
  any_dirty_ = true;
}

void PartitionEvaluator::move_gate(netlist::GateId g, std::uint32_t target) {
  const std::uint32_t src = partition_.module_of(g);
  IDDQ_ASSERT(src != kUnassigned);
  IDDQ_ASSERT(target < partition_.module_count());
  if (src == target) return;

  const auto& cell = ctx_->cells[g];
  // Separation sums are updated while module_of still reflects the old
  // assignment (g not yet in target, still in src); the near-list scan is
  // inlined here to avoid materialising a module_of vector per move.
  const double rho = static_cast<double>(ctx_->oracle.rho());
  double sum_src = static_cast<double>(partition_.module_size(src) - 1) * rho;
  double sum_dst = static_cast<double>(partition_.module_size(target)) * rho;
  for (const auto& [neighbor, distance] : ctx_->oracle.near(g)) {
    const std::uint32_t nm = partition_.module_of(neighbor);
    if (nm == src)
      sum_src -= rho - static_cast<double>(distance);
    else if (nm == target)
      sum_dst -= rho - static_cast<double>(distance);
  }
  separation_[src] -= sum_src;
  separation_[target] += sum_dst;

  profiles_[src].remove_gate(ctx_->transition_times.at(g), cell.ipeak_ua);
  profiles_[target].add_gate(ctx_->transition_times.at(g), cell.ipeak_ua);
  leak_ua_[src] -= units::na_to_ua(cell.ileak_na);
  leak_ua_[target] += units::na_to_ua(cell.ileak_na);
  cvr_ff_[src] -= cell.cvr_ff;
  cvr_ff_[target] += cell.cvr_ff;
  const std::uint16_t type = ctx_->type_of[g];
  IDDQ_ASSERT(hist_row(src)[type] > 0);
  hist_row(src)[type]--;
  hist_row(target)[type]++;

  // A move dirties exactly its two endpoint modules; erase_module below
  // carries the flags through the slot swap.
  mark_dirty(src);
  mark_dirty(target);

  partition_.move(g, target);
  if (partition_.module_size(src) == 0) erase_module(src);
}

void PartitionEvaluator::erase_module(std::uint32_t m) {
  const std::uint32_t moved_from = partition_.erase_empty_module(m);
  const std::uint32_t last = static_cast<std::uint32_t>(profiles_.size() - 1);
  IDDQ_ASSERT(moved_from == last);
  if (m != last) {
    profiles_[m] = std::move(profiles_[last]);
    leak_ua_[m] = leak_ua_[last];
    cvr_ff_[m] = cvr_ff_[last];
    separation_[m] = separation_[last];
    const auto last_hist = hist_row(last);
    std::copy(last_hist.begin(), last_hist.end(), hist_row(m).begin());
    const auto last_row = delta_row(last);
    std::copy(last_row.begin(), last_row.end(), delta_row(m).begin());
    area_[m] = area_[last];
    settle_ps_[m] = settle_ps_[last];
    dirty_[m] = dirty_[last];
  }
  profiles_.pop_back();
  leak_ua_.pop_back();
  cvr_ff_.pop_back();
  separation_.pop_back();
  type_histogram_.resize(last * ctx_->type_count);
  type_delta_.resize(last * ctx_->type_count);
  area_.pop_back();
  settle_ps_.pop_back();
  dirty_.pop_back();
}

double PartitionEvaluator::module_rs_kohm(std::uint32_t m) const {
  return elec::sensor_rs_kohm(ctx_->sensor, profiles_[m].max_current_ua());
}

double PartitionEvaluator::module_cs_ff(std::uint32_t m) const {
  return cvr_ff_[m] + ctx_->sensor.c_sensor_ff;
}

double PartitionEvaluator::violation() const {
  double v = 0.0;
  for (const double leak : leak_ua_) {
    if (leak > ctx_->leak_cap_ua)
      v += (leak - ctx_->leak_cap_ua) / ctx_->leak_cap_ua;
  }
  return v;
}

void PartitionEvaluator::derive_module_delay(
    double idd_max_ua, std::uint32_t max_switching, double cvr_ff,
    std::span<const std::uint32_t> histogram, std::span<double> type_delta_row,
    double& area, double& settle) const {
  // Worst-case degradation per (module, cell type): every gate of the
  // module is charged the module's peak simultaneity n_max,m — the paper's
  // pessimistic treatment of the time-grid functions delta(g, t). Note the
  // self-normalisation: with R_s = r / iDD_max and iDD_max ~ n_max * ipeak,
  // the product n_max * R_s ~ r / ipeak is partition-invariant, which is why
  // the paper's Table 1 shows (and our benches reproduce) essentially equal
  // delay overheads for different partitioning methods at equal K.
  const double rs = elec::sensor_rs_kohm(ctx_->sensor, idd_max_ua);
  const double cs = cvr_ff + ctx_->sensor.c_sensor_ff;
  const std::uint32_t n_max = std::max<std::uint32_t>(max_switching, 1);
  IDDQ_ASSERT(histogram.size() == ctx_->type_count &&
              type_delta_row.size() == ctx_->type_count);
  std::fill(type_delta_row.begin(), type_delta_row.end(), 1.0);
  for (std::size_t t = 0; t < ctx_->type_count; ++t) {
    if (histogram[t] == 0) continue;
    elec::DelayModelInput in;
    in.rs_kohm = rs;
    in.cs_ff = cs;
    in.cg_ff = ctx_->type_cg_ff[t];
    in.rg_kohm = ctx_->type_rg_kohm[t];
    in.n = n_max;
    type_delta_row[t] = elec::DelayDegradationModel::delta(in);
  }
  area = elec::sensor_area(ctx_->sensor, rs);
  settle = ctx_->settling.delta_ps(elec::sensor_tau_ps(rs, cs), idd_max_ua,
                                   ctx_->sensor.iddq_th_ua);
}

void PartitionEvaluator::refresh() {
  if (!any_dirty_) return;  // cached scalars stay valid on a clean state
  const std::size_t k = partition_.module_count();
  std::size_t dirty_gates = 0;
  for (std::uint32_t m = 0; m < k; ++m) {
    if (!dirty_[m]) continue;
    derive_module_delay(profiles_[m].max_current_ua(),
                        profiles_[m].max_switching(), cvr_ff_[m], hist_row(m),
                        delta_row(m), area_[m], settle_ps_[m]);
    dirty_gates += partition_.module_size(m);
  }
  const auto factor = [this](netlist::GateId g) {
    return type_delta_[partition_.module_of(g) * ctx_->type_count +
                       ctx_->type_of[g]];
  };
  // Dense updates (big mutations touching most gates, or a copied
  // evaluator whose timing state was dropped) take the plain full pass;
  // sparse ones seed the gates of the dirty modules and repropagate only
  // the affected cone. Bit-identical either way: every arrival is the
  // same pure function of the same factors.
  if (!timing_.valid() ||
      dirty_gates * est::IncrementalTiming::kDenseSeedFactor >=
          ctx_->nl.gate_count()) {
    d_bic_ps_ = timing_.rebuild(factor);
  } else {
    auto& seeds = scratch_.value.seeds;
    seeds.clear();
    for (std::uint32_t m = 0; m < k; ++m) {
      if (!dirty_[m]) continue;
      const auto module = partition_.module(m);
      seeds.insert(seeds.end(), module.begin(), module.end());
    }
    d_bic_ps_ = timing_.propagate(seeds, factor);
  }
  std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
  any_dirty_ = false;
  settle_max_ps_ = 0.0;
  for (std::size_t m = 0; m < k; ++m)
    settle_max_ps_ = std::max(settle_max_ps_, settle_ps_[m]);
}

double PartitionEvaluator::d_bic_ps() {
  refresh();
  return d_bic_ps_;
}

double PartitionEvaluator::total_sensor_area() {
  refresh();
  double area = 0.0;
  for (std::uint32_t m = 0; m < partition_.module_count(); ++m)
    area += area_[m];
  return area;
}

Costs PartitionEvaluator::costs() {
  refresh();
  Costs c;
  c.c1 = std::log(std::max(total_sensor_area(), 1.0));
  c.c2 = (d_bic_ps_ - ctx_->d_nominal_ps) / ctx_->d_nominal_ps;
  double s_total = 0.0;
  for (const double s : separation_) s_total += s;
  c.c3 = std::log(std::max(s_total, 1.0));
  c.c4 = est::test_time_overhead(ctx_->d_nominal_ps, d_bic_ps_,
                                 settle_max_ps_);
  c.c5 = static_cast<double>(partition_.module_count());
  return c;
}

Fitness PartitionEvaluator::fitness() {
  return Fitness{violation(), costs().total(ctx_->weights)};
}

MoveProbe PartitionEvaluator::probe_move(netlist::GateId g,
                                         std::uint32_t target) {
  const std::uint32_t src = partition_.module_of(g);
  IDDQ_ASSERT(src != kUnassigned);
  IDDQ_ASSERT(target < partition_.module_count());
  IDDQ_ASSERT(src != target);
  require(partition_.module_size(src) >= 2,
          "probe_move: move would empty its source module (commit such "
          "moves with move_gate)");
  refresh();
  if (!timing_.valid()) {
    // A fresh copy dropped its arrival state and nothing has dirtied it
    // since; rebuild it (bit-identical to the dropped state).
    d_bic_ps_ = timing_.rebuild([this](netlist::GateId x) {
      return type_delta_[partition_.module_of(x) * ctx_->type_count +
                         ctx_->type_of[x]];
    });
  }

  const auto& cell = ctx_->cells[g];
  // Overlay the two endpoint modules with exactly the expressions
  // move_gate would apply (same operands, pre-move state), so the scores
  // below match copy + move_gate + fitness bit-for-bit.
  const double rho = static_cast<double>(ctx_->oracle.rho());
  double sum_src = static_cast<double>(partition_.module_size(src) - 1) * rho;
  double sum_dst = static_cast<double>(partition_.module_size(target)) * rho;
  for (const auto& [neighbor, distance] : ctx_->oracle.near(g)) {
    const std::uint32_t nm = partition_.module_of(neighbor);
    if (nm == src)
      sum_src -= rho - static_cast<double>(distance);
    else if (nm == target)
      sum_dst -= rho - static_cast<double>(distance);
  }
  const double sep_src = separation_[src] - sum_src;
  const double sep_tgt = separation_[target] + sum_dst;

  ProbeScratch& scratch = scratch_.value;
  // Grid maxima of the two overlay profiles, by read-only scan — the only
  // facts the delay derivation needs from them (bit-equal to materialised
  // copies, see ModuleCurrentProfile::OverlayMax).
  const est::ModuleCurrentProfile::OverlayMax peak_src =
      profiles_[src].max_with_gate_removed(ctx_->transition_times.at(g),
                                           cell.ipeak_ua);
  const est::ModuleCurrentProfile::OverlayMax peak_tgt =
      profiles_[target].max_with_gate_added(ctx_->transition_times.at(g),
                                            cell.ipeak_ua);
  const double leak_src = leak_ua_[src] - units::na_to_ua(cell.ileak_na);
  const double leak_tgt = leak_ua_[target] + units::na_to_ua(cell.ileak_na);
  const double cvr_src = cvr_ff_[src] - cell.cvr_ff;
  const double cvr_tgt = cvr_ff_[target] + cell.cvr_ff;
  const std::uint16_t type = ctx_->type_of[g];
  const auto src_hist = hist_row(src);
  scratch.hist_src.assign(src_hist.begin(), src_hist.end());
  IDDQ_ASSERT(scratch.hist_src[type] > 0);
  scratch.hist_src[type]--;
  const auto tgt_hist = hist_row(target);
  scratch.hist_tgt.assign(tgt_hist.begin(), tgt_hist.end());
  scratch.hist_tgt[type]++;

  double area_src = 0.0, area_tgt = 0.0, settle_src = 0.0, settle_tgt = 0.0;
  scratch.row_src.resize(ctx_->type_count);
  scratch.row_tgt.resize(ctx_->type_count);
  derive_module_delay(peak_src.current_ua, peak_src.switching, cvr_src,
                      scratch.hist_src, scratch.row_src, area_src,
                      settle_src);
  derive_module_delay(peak_tgt.current_ua, peak_tgt.switching, cvr_tgt,
                      scratch.hist_tgt, scratch.row_tgt, area_tgt,
                      settle_tgt);

  // Probe the timing cone with the overlay rows substituted for the two
  // endpoint modules (g itself lands in the target row); seeding every
  // gate of both modules is enough — unchanged factors prune immediately,
  // and the journaled sweep restores the arrivals before returning.
  scratch.seeds.clear();
  const auto src_module = partition_.module(src);
  const auto tgt_module = partition_.module(target);
  scratch.seeds.insert(scratch.seeds.end(), src_module.begin(),
                       src_module.end());
  scratch.seeds.insert(scratch.seeds.end(), tgt_module.begin(),
                       tgt_module.end());
  const auto probe_factor = [&](netlist::GateId x) {
    if (x == g) return scratch.row_tgt[ctx_->type_of[x]];
    const std::uint32_t m = partition_.module_of(x);
    if (m == src) return scratch.row_src[ctx_->type_of[x]];
    if (m == target) return scratch.row_tgt[ctx_->type_of[x]];
    return type_delta_[m * ctx_->type_count + ctx_->type_of[x]];
  };
  const double d_bic = timing_.probe(scratch.seeds, probe_factor);

  // Assemble exactly what fitness()/costs() compute post-move: the same
  // index-ordered sums with the src/target slots overlaid.
  const std::size_t k = partition_.module_count();
  const auto overlay = [&](std::size_t m, double at_src, double at_tgt,
                           const std::vector<double>& rest) {
    return m == src ? at_src : m == target ? at_tgt : rest[m];
  };
  Costs c;
  double area_total = 0.0;
  for (std::size_t m = 0; m < k; ++m)
    area_total += overlay(m, area_src, area_tgt, area_);
  c.c1 = std::log(std::max(area_total, 1.0));
  c.c2 = (d_bic - ctx_->d_nominal_ps) / ctx_->d_nominal_ps;
  double s_total = 0.0;
  for (std::size_t m = 0; m < k; ++m)
    s_total += overlay(m, sep_src, sep_tgt, separation_);
  c.c3 = std::log(std::max(s_total, 1.0));
  double settle_max = 0.0;
  for (std::size_t m = 0; m < k; ++m)
    settle_max =
        std::max(settle_max, overlay(m, settle_src, settle_tgt, settle_ps_));
  c.c4 = est::test_time_overhead(ctx_->d_nominal_ps, d_bic, settle_max);
  c.c5 = static_cast<double>(k);
  double v = 0.0;
  for (std::size_t m = 0; m < k; ++m) {
    const double leak = overlay(m, leak_src, leak_tgt, leak_ua_);
    if (leak > ctx_->leak_cap_ua)
      v += (leak - ctx_->leak_cap_ua) / ctx_->leak_cap_ua;
  }
  return MoveProbe{Fitness{v, c.total(ctx_->weights)}, c};
}

ModuleReport PartitionEvaluator::module_report(std::uint32_t m) {
  IDDQ_ASSERT(m < partition_.module_count());
  ModuleReport r;
  r.gates = partition_.module_size(m);
  r.idd_max_ua = profiles_[m].max_current_ua();
  r.leakage_ua = leak_ua_[m];
  r.discriminability =
      est::discriminability(ctx_->sensor.iddq_th_ua, leak_ua_[m]);
  r.rs_kohm = module_rs_kohm(m);
  r.cs_ff = module_cs_ff(m);
  r.tau_ps = elec::sensor_tau_ps(r.rs_kohm, r.cs_ff);
  r.area = elec::sensor_area(ctx_->sensor, r.rs_kohm);
  r.separation = separation_[m];
  r.rail_perturbation_mv = elec::rail_perturbation_mv(r.rs_kohm, r.idd_max_ua);
  r.settle_ps =
      ctx_->settling.delta_ps(r.tau_ps, r.idd_max_ua, ctx_->sensor.iddq_th_ua);
  return r;
}

void PartitionEvaluator::self_check() {
  refresh();
  PartitionEvaluator fresh(*ctx_, partition_);
  for (std::uint32_t m = 0; m < partition_.module_count(); ++m) {
    // The incremental max state first: every tournament-tree node must be
    // consistent with its leaves and the O(1) maxima with the O(grid)
    // reference scans.
    profiles_[m].self_check();
    // Switching counts are integers and must match exactly; the running
    // current sums accumulate floating-point rounding in a different order
    // than a fresh summation, so they are compared with a tolerance.
    const auto fresh_sw = fresh.profiles_[m].switching();
    const auto inc_sw = profiles_[m].switching();
    require(std::equal(fresh_sw.begin(), fresh_sw.end(), inc_sw.begin(),
                       inc_sw.end()),
            "self_check: switching-count profile mismatch");
    const auto fresh_i = fresh.profiles_[m].current_ua();
    const auto inc_i = profiles_[m].current_ua();
    for (std::size_t t = 0; t < fresh_i.size(); ++t)
      require(math::rel_diff(fresh_i[t], inc_i[t]) < 1e-9,
              "self_check: current profile mismatch");
    require(math::rel_diff(fresh.leak_ua_[m], leak_ua_[m]) < 1e-9,
            "self_check: leakage mismatch");
    require(math::rel_diff(fresh.cvr_ff_[m], cvr_ff_[m]) < 1e-9,
            "self_check: cvr mismatch");
    require(math::rel_diff(fresh.separation_[m], separation_[m]) < 1e-9,
            "self_check: separation mismatch");
    const auto fresh_hist = fresh.hist_row(m);
    const auto inc_hist = hist_row(m);
    require(std::equal(fresh_hist.begin(), fresh_hist.end(), inc_hist.begin(),
                       inc_hist.end()),
            "self_check: type histogram mismatch");
  }
  // Lazy delay state: the cached anchors/area/settling are pure functions
  // of the (possibly residue-carrying) running sums checked above, so
  // against *those* sums they must be bit-exact — and so must the
  // incrementally maintained critical path against a full pass over the
  // same per-gate factors.
  std::vector<double> row(ctx_->type_count);
  double area = 0.0;
  double settle = 0.0;
  double settle_max = 0.0;
  std::vector<double> factors(ctx_->nl.gate_count(), 1.0);
  for (std::uint32_t m = 0; m < partition_.module_count(); ++m) {
    derive_module_delay(profiles_[m].max_current_ua(),
                        profiles_[m].max_switching(), cvr_ff_[m], hist_row(m),
                        row, area, settle);
    const auto cached = delta_row(m);
    require(std::equal(row.begin(), row.end(), cached.begin(), cached.end()),
            "self_check: type-delta row mismatch");
    require(area == area_[m], "self_check: sensor-area cache mismatch");
    require(settle == settle_ps_[m], "self_check: settling cache mismatch");
    settle_max = std::max(settle_max, settle);
    for (const netlist::GateId g : partition_.module(m))
      factors[g] = row[ctx_->type_of[g]];
  }
  require(settle_max == settle_max_ps_, "self_check: settle-max mismatch");
  require(est::degraded_critical_path_ps(ctx_->nl, ctx_->cells, factors) ==
              d_bic_ps_,
          "self_check: incremental critical path diverged from full pass");
}

}  // namespace iddq::part
