// PartitionEvaluator: incremental evaluation of constraints and costs.
//
// The paper's evolution strategy relies on recomputing costs "just for the
// modified modules" (section 4.2). EvalContext holds everything immutable
// per circuit (netlist, bound cells, transition-time sets, distance oracle,
// settling model, sensor spec, weights); PartitionEvaluator holds one
// partition plus per-module caches:
//
//   * current/count profiles  -> iDD_max,i, n_i(t)      (add/remove per gate)
//   * leakage sums            -> discriminability check (O(1) per move)
//   * separation sums S(M_i)  -> c3                     (O(|near|) per move)
//   * virtual-rail capacitance-> tau_i                  (O(1) per move)
//   * per-module cell-type counts -> delay-model anchors
//
// The delay terms (c2, c4) are inherently global (critical path), so they
// are recomputed lazily on query, using the cached per-module profiles.
// tests/partition/test_incremental.cpp verifies full == incremental on
// random move sequences.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "electrical/sensor_model.hpp"
#include "electrical/settling.hpp"
#include "estimators/current_profile.hpp"
#include "estimators/transition_times.hpp"
#include "library/cell_library.hpp"
#include "netlist/distance_oracle.hpp"
#include "netlist/netlist.hpp"
#include "partition/cost_model.hpp"
#include "partition/partition.hpp"

namespace iddq::part {

/// Immutable per-circuit evaluation context (shared by many evaluators).
class EvalContext {
 public:
  /// `grid_bin_ps` is the transition-time grid resolution (section 3.1's
  /// time grid); the default resolves a quarter of the fastest default-
  /// library cell.
  EvalContext(const netlist::Netlist& nl, const lib::CellLibrary& library,
              elec::SensorSpec sensor, CostWeights weights,
              std::uint32_t rho = 4, double grid_bin_ps = 45.0);

  const netlist::Netlist& nl;
  std::vector<lib::CellParams> cells;      // by GateId
  est::TransitionTimes transition_times;
  netlist::DistanceOracle oracle;
  elec::SettlingModel settling;
  elec::SensorSpec sensor;
  CostWeights weights;

  /// Dense cell-type indexing for the delay-model anchor cache.
  std::vector<std::uint16_t> type_of;      // by GateId; inputs = 0 (unused)
  std::vector<double> type_cg_ff;          // by type index
  std::vector<double> type_rg_kohm;        // by type index
  std::size_t type_count = 0;

  double d_nominal_ps = 0.0;               // critical path without sensors
  double leak_cap_ua = 0.0;                // IDDQ_th / d
};

/// Per-module snapshot used by reports and benches.
struct ModuleReport {
  std::size_t gates = 0;
  double idd_max_ua = 0.0;
  double leakage_ua = 0.0;
  double discriminability = 0.0;
  double rs_kohm = 0.0;
  double cs_ff = 0.0;
  double tau_ps = 0.0;
  double area = 0.0;
  double separation = 0.0;
  double rail_perturbation_mv = 0.0;
  double settle_ps = 0.0;
};

class PartitionEvaluator {
 public:
  /// Takes ownership of the partition and fully computes all caches.
  PartitionEvaluator(const EvalContext& ctx, Partition partition);

  // Copyable: evolution-strategy children copy the parent and mutate.
  PartitionEvaluator(const PartitionEvaluator&) = default;
  PartitionEvaluator& operator=(const PartitionEvaluator&) = default;
  PartitionEvaluator(PartitionEvaluator&&) = default;
  PartitionEvaluator& operator=(PartitionEvaluator&&) = default;

  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const EvalContext& context() const noexcept { return *ctx_; }

  /// Moves a gate to another module, incrementally updating every cache.
  /// Erases the source module if the move empties it (module indices shift
  /// as documented on Partition::erase_empty_module).
  void move_gate(netlist::GateId g, std::uint32_t target);

  /// Constraint violation: sum over modules of the relative leakage excess
  /// over IDDQ_th/d; 0 when the partition is feasible. O(K).
  [[nodiscard]] double violation() const;

  /// All five cost terms (recomputes the lazy delay terms when dirty).
  [[nodiscard]] Costs costs();

  /// Lexicographic fitness (violation, weighted cost).
  [[nodiscard]] Fitness fitness();

  /// Degraded critical path D_BIC, in ps (triggers delay evaluation).
  [[nodiscard]] double d_bic_ps();

  /// Per-module report for tables.
  [[nodiscard]] ModuleReport module_report(std::uint32_t m);

  /// Total BIC sensor area (sum over modules).
  [[nodiscard]] double total_sensor_area();

  /// Verification helper: recomputes every cache from scratch and compares
  /// with the incrementally maintained state (throws on mismatch).
  void self_check() const;

 private:
  void rebuild_all();
  void erase_module(std::uint32_t m);
  [[nodiscard]] double module_rs_kohm(std::uint32_t m) const;
  [[nodiscard]] double module_cs_ff(std::uint32_t m) const;
  void ensure_delay_fresh();

  const EvalContext* ctx_;
  Partition partition_;

  // Per-module caches, indexed like partition_ modules.
  std::vector<est::ModuleCurrentProfile> profiles_;
  std::vector<double> leak_ua_;
  std::vector<double> cvr_ff_;
  std::vector<double> separation_;
  std::vector<std::vector<std::uint32_t>> type_histogram_;

  // Lazy global delay state.
  bool delay_dirty_ = true;
  double d_bic_ps_ = 0.0;
  double settle_max_ps_ = 0.0;
};

}  // namespace iddq::part
