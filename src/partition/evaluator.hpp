// PartitionEvaluator: incremental evaluation of constraints and costs.
//
// The paper's evolution strategy relies on recomputing costs "just for the
// modified modules" (section 4.2). EvalContext holds everything immutable
// per circuit (netlist, bound cells, transition-time sets, distance oracle,
// timing graph, settling model, sensor spec, weights); PartitionEvaluator
// holds one partition plus per-module caches:
//
//   * current/count profiles  -> iDD_max,i, n_i(t)      (add/remove per gate)
//   * leakage sums            -> discriminability check (O(1) per move)
//   * separation sums S(M_i)  -> c3                     (O(|near|) per move)
//   * virtual-rail capacitance-> tau_i                  (O(1) per move)
//   * per-module cell-type counts -> delay-model anchors
//
// The delay-dependent terms (c2, c4) and the per-module sensor areas (c1)
// are refreshed lazily on query, but *incrementally*: a move dirties
// exactly its {source, target} modules, the refresh rederives the delay
// anchors / area / settling only for dirty modules (into persistent scratch
// — no per-query allocation), and the set of gates whose degradation
// factor actually changed seeds est::IncrementalTiming, which repropagates
// only the affected cone of the critical-path recurrence. Every derived
// value is a pure function of the per-module sums, computed by the same
// expressions on the same operands as a full recomputation, so the refresh
// is bit-identical to the historical full pass.
// tests/partition/test_incremental.cpp verifies full == incremental on
// random move sequences; tests/partition/test_probe.cpp pins probe_move
// against copy + move_gate + fitness bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "electrical/sensor_model.hpp"
#include "electrical/settling.hpp"
#include "estimators/current_profile.hpp"
#include "estimators/incremental_timing.hpp"
#include "estimators/transition_times.hpp"
#include "library/cell_library.hpp"
#include "netlist/distance_oracle.hpp"
#include "netlist/netlist.hpp"
#include "partition/cost_model.hpp"
#include "partition/partition.hpp"

namespace iddq::part {

/// Immutable per-circuit evaluation context (shared by many evaluators).
class EvalContext {
 public:
  /// `grid_bin_ps` is the transition-time grid resolution (section 3.1's
  /// time grid); the default resolves a quarter of the fastest default-
  /// library cell.
  EvalContext(const netlist::Netlist& nl, const lib::CellLibrary& library,
              elec::SensorSpec sensor, CostWeights weights,
              std::uint32_t rho = 4, double grid_bin_ps = 45.0);

  const netlist::Netlist& nl;
  std::vector<lib::CellParams> cells;      // by GateId
  est::TransitionTimes transition_times;
  netlist::DistanceOracle oracle;
  est::TimingGraph timing_graph;           // shared topological order
  elec::SettlingModel settling;
  elec::SensorSpec sensor;
  CostWeights weights;

  /// Dense cell-type indexing for the delay-model anchor cache.
  std::vector<std::uint16_t> type_of;      // by GateId; inputs = 0 (unused)
  std::vector<double> type_cg_ff;          // by type index
  std::vector<double> type_rg_kohm;        // by type index
  std::size_t type_count = 0;

  double d_nominal_ps = 0.0;               // critical path without sensors
  double leak_cap_ua = 0.0;                // IDDQ_th / d
};

/// Per-module snapshot used by reports and benches.
struct ModuleReport {
  std::size_t gates = 0;
  double idd_max_ua = 0.0;
  double leakage_ua = 0.0;
  double discriminability = 0.0;
  double rs_kohm = 0.0;
  double cs_ff = 0.0;
  double tau_ps = 0.0;
  double area = 0.0;
  double separation = 0.0;
  double rail_perturbation_mv = 0.0;
  double settle_ps = 0.0;
};

/// What a hypothetical move would score: exactly the Fitness/Costs a copy
/// of the evaluator would report after move_gate(), without the copy.
struct MoveProbe {
  Fitness fitness;
  Costs costs;
};

/// Per-instance scratch buffers excluded from copies: a copied evaluator
/// starts with fresh (empty) scratch instead of duplicating its source's
/// buffers — the contents are meaningless between calls, and the
/// population hot path copies evaluators by the tens of thousands.
template <class T>
struct CopyDroppedScratch {
  T value{};
  CopyDroppedScratch() = default;
  CopyDroppedScratch(const CopyDroppedScratch&) noexcept {}
  CopyDroppedScratch& operator=(const CopyDroppedScratch&) noexcept {
    return *this;
  }
  CopyDroppedScratch(CopyDroppedScratch&&) = default;
  CopyDroppedScratch& operator=(CopyDroppedScratch&&) = default;
};

class PartitionEvaluator {
 public:
  /// Takes ownership of the partition and fully computes all caches.
  PartitionEvaluator(const EvalContext& ctx, Partition partition);

  // Copyable: evolution-strategy children copy the parent and mutate.
  PartitionEvaluator(const PartitionEvaluator&) = default;
  PartitionEvaluator& operator=(const PartitionEvaluator&) = default;
  PartitionEvaluator(PartitionEvaluator&&) = default;
  PartitionEvaluator& operator=(PartitionEvaluator&&) = default;

  [[nodiscard]] const Partition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const EvalContext& context() const noexcept { return *ctx_; }

  /// Moves a gate to another module, incrementally updating every cache.
  /// Erases the source module if the move empties it (module indices shift
  /// as documented on Partition::erase_empty_module).
  void move_gate(netlist::GateId g, std::uint32_t target);

  /// Scores the move (g -> target) against the current state without
  /// committing it: returns bit-for-bit what `copy = *this;
  /// copy.move_gate(g, target); {copy.fitness(), copy.costs()}` would,
  /// using src/target scratch overlays plus a rolled-back timing probe
  /// instead of the O(gates + K*grid) copy. The evaluator's logical state
  /// is unchanged (scratch and lazy caches may refresh). Requires a move
  /// that does not empty its source module (the accept/reject loops never
  /// propose one; commit emptying moves with move_gate directly).
  [[nodiscard]] MoveProbe probe_move(netlist::GateId g, std::uint32_t target);

  /// Constraint violation: sum over modules of the relative leakage excess
  /// over IDDQ_th/d; 0 when the partition is feasible. O(K).
  [[nodiscard]] double violation() const;

  /// All five cost terms (refreshes the lazy delay/area terms when dirty).
  [[nodiscard]] Costs costs();

  /// Lexicographic fitness (violation, weighted cost).
  [[nodiscard]] Fitness fitness();

  /// Degraded critical path D_BIC, in ps (triggers delay evaluation).
  [[nodiscard]] double d_bic_ps();

  /// Brings every lazy cache up to date now (dirty modules rederived, the
  /// changed-gate cone repropagated). Queries do this on demand; call it
  /// explicitly before fanning probe work out from a shared round-start
  /// evaluator so each worker copy starts clean.
  void refresh();

  /// Per-module report for tables.
  [[nodiscard]] ModuleReport module_report(std::uint32_t m);

  /// Total BIC sensor area (sum over modules).
  [[nodiscard]] double total_sensor_area();

  /// Verification helper: recomputes every cache from scratch and compares
  /// with the incrementally maintained state (throws on mismatch). Covers
  /// the lazy delay state: the degradation factors, per-module area and
  /// settling caches, and D_BIC must match a from-scratch derivation of
  /// the current sums bit-for-bit.
  void self_check();

 private:
  void rebuild_all();
  void erase_module(std::uint32_t m);
  [[nodiscard]] double module_rs_kohm(std::uint32_t m) const;
  [[nodiscard]] double module_cs_ff(std::uint32_t m) const;
  /// Derives the delay-model anchors, sensor area, and settling time of a
  /// module's (profile, cvr, histogram) state. The single code path for
  /// refresh(), probe_move(), and self_check() — sharing it is what keeps
  /// overlay arithmetic bit-identical to committed refreshes. The row
  /// spans must be ctx_->type_count wide (a row of the SoA matrices below
  /// or an equally sized scratch row).
  void derive_module_delay(double idd_max_ua, std::uint32_t max_switching,
                           double cvr_ff,
                           std::span<const std::uint32_t> histogram,
                           std::span<double> type_delta_row, double& area,
                           double& settle) const;
  void mark_dirty(std::uint32_t m);

  /// Rows of the flat [module x type] SoA matrices.
  [[nodiscard]] std::span<const std::uint32_t> hist_row(
      std::uint32_t m) const noexcept {
    return std::span<const std::uint32_t>(type_histogram_)
        .subspan(m * ctx_->type_count, ctx_->type_count);
  }
  [[nodiscard]] std::span<std::uint32_t> hist_row(std::uint32_t m) noexcept {
    return std::span<std::uint32_t>(type_histogram_)
        .subspan(m * ctx_->type_count, ctx_->type_count);
  }
  [[nodiscard]] std::span<const double> delta_row(
      std::uint32_t m) const noexcept {
    return std::span<const double>(type_delta_)
        .subspan(m * ctx_->type_count, ctx_->type_count);
  }
  [[nodiscard]] std::span<double> delta_row(std::uint32_t m) noexcept {
    return std::span<double>(type_delta_)
        .subspan(m * ctx_->type_count, ctx_->type_count);
  }

  const EvalContext* ctx_;
  Partition partition_;

  // Per-module caches, indexed like partition_ modules. The per-type state
  // is SoA: one flat [module x type] matrix per quantity (stride
  // ctx_->type_count) instead of a vector-of-vectors, so a refresh sweeps
  // contiguous memory the compiler can vectorize, a probe's overlay rows
  // are cheap span copies, and erase_module's slot swap is a copy_n
  // instead of a heap-handle shuffle.
  std::vector<est::ModuleCurrentProfile> profiles_;
  std::vector<double> leak_ua_;
  std::vector<double> cvr_ff_;
  std::vector<double> separation_;
  std::vector<std::uint32_t> type_histogram_;  // flat [module x type]

  // Lazily refreshed delay/area state (valid where !dirty_[m]). The
  // per-gate degradation factor is delta_row(module_of(g))[type_of(g)]
  // — served to the timing engine through a lookup, never materialised as
  // a per-gate array.
  std::vector<double> type_delta_;               // flat [module x type]
  std::vector<double> area_;                     // sensor area per module
  std::vector<double> settle_ps_;                // Delta(tau) per module
  std::vector<std::uint8_t> dirty_;              // per module
  bool any_dirty_ = true;
  est::IncrementalTiming timing_;  // drops arrival state on copy
  double d_bic_ps_ = 0.0;
  double settle_max_ps_ = 0.0;

  struct ProbeScratch {
    std::vector<netlist::GateId> seeds;
    std::vector<std::uint32_t> hist_src;
    std::vector<std::uint32_t> hist_tgt;
    std::vector<double> row_src;
    std::vector<double> row_tgt;
  };
  CopyDroppedScratch<ProbeScratch> scratch_;
};

}  // namespace iddq::part
