#include "partition/partition.hpp"

#include "support/error.hpp"

namespace iddq::part {

Partition::Partition(std::size_t gate_count, std::size_t module_count)
    : module_of_(gate_count, kUnassigned),
      pos_in_module_(gate_count, 0),
      modules_(module_count) {
  require(module_count >= 1, "partition: need at least one module");
}

Partition Partition::from_groups(
    const netlist::Netlist& nl,
    std::span<const std::vector<netlist::GateId>> groups) {
  Partition p(nl.gate_count(), groups.size());
  for (std::uint32_t m = 0; m < groups.size(); ++m) {
    for (const netlist::GateId g : groups[m]) {
      require(g < nl.gate_count(), "partition: gate id out of range");
      require(netlist::is_logic(nl.gate(g).kind),
              "partition: primary input '" + nl.gate(g).name +
                  "' cannot be assigned to a module");
      require(p.module_of_[g] == kUnassigned,
              "partition: gate '" + nl.gate(g).name +
                  "' appears in two groups");
      p.assign(g, m);
    }
  }
  require(p.assigned_ == nl.logic_gate_count(),
          "partition: groups do not cover all logic gates");
  for (std::uint32_t m = 0; m < p.module_count(); ++m)
    require(!p.modules_[m].empty(), "partition: empty module in groups");
  return p;
}

void Partition::assign(netlist::GateId g, std::uint32_t m) {
  IDDQ_ASSERT(g < module_of_.size());
  IDDQ_ASSERT(m < modules_.size());
  IDDQ_ASSERT(module_of_[g] == kUnassigned);
  module_of_[g] = m;
  pos_in_module_[g] = static_cast<std::uint32_t>(modules_[m].size());
  modules_[m].push_back(g);
  ++assigned_;
}

void Partition::move(netlist::GateId g, std::uint32_t target) {
  IDDQ_ASSERT(g < module_of_.size());
  IDDQ_ASSERT(target < modules_.size());
  const std::uint32_t src = module_of_[g];
  IDDQ_ASSERT(src != kUnassigned);
  if (src == target) return;
  // Swap-pop from the source module.
  auto& src_gates = modules_[src];
  const std::uint32_t pos = pos_in_module_[g];
  IDDQ_ASSERT(src_gates[pos] == g);
  const netlist::GateId last = src_gates.back();
  src_gates[pos] = last;
  pos_in_module_[last] = pos;
  src_gates.pop_back();
  // Append to the target.
  module_of_[g] = target;
  pos_in_module_[g] = static_cast<std::uint32_t>(modules_[target].size());
  modules_[target].push_back(g);
}

std::uint32_t Partition::erase_empty_module(std::uint32_t m) {
  IDDQ_ASSERT(m < modules_.size());
  require(modules_[m].empty(), "erase_empty_module: module is not empty");
  const auto last = static_cast<std::uint32_t>(modules_.size() - 1);
  if (m != last) {
    modules_[m] = std::move(modules_[last]);
    for (const netlist::GateId g : modules_[m]) module_of_[g] = m;
  }
  modules_.pop_back();
  return last;
}

bool Partition::covers(const netlist::Netlist& nl) const {
  if (assigned_ != nl.logic_gate_count()) return false;
  for (const auto& gates : modules_)
    if (gates.empty()) return false;
  for (const netlist::GateId g : nl.logic_gates())
    if (module_of_[g] == kUnassigned) return false;
  return true;
}

}  // namespace iddq::part
