// Text serialization of partitions (save/restore of flow results).
//
// Format:
//   # comment
//   partition <circuit-name> modules <K>
//   module 0: g1 g2 g3 ...
//   module 1: ...
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"
#include "partition/partition.hpp"

namespace iddq::part {

void write_partition(std::ostream& os, const netlist::Netlist& nl,
                     const Partition& p);

[[nodiscard]] std::string to_partition_string(const netlist::Netlist& nl,
                                              const Partition& p);

/// Parses a partition against `nl` (gate names must resolve; the cover
/// property is enforced). Throws iddq::ParseError / iddq::Error.
[[nodiscard]] Partition read_partition_text(std::string_view text,
                                            const netlist::Netlist& nl,
                                            std::string_view source_label =
                                                "<text>");

}  // namespace iddq::part
