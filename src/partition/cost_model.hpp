// Cost model: the paper's weighted multi-objective function (sections 2-3).
//
//   C(Pi) = a1*c1 + a2*c2 + a3*c3 + a4*c4 + a5*c5
//
//   c1 = log(sum_i A_i)        BIC sensor area
//   c2 = (D_BIC - D) / D       circuit delay overhead
//   c3 = log(sum_k S(M_k))     intra-module connectivity cost
//   c4 = test-time overhead    (D_BIC + max_i Delta(tau_i)) / D - 1
//   c5 = K                     sensor count (test clock / test-out routing)
//
// Default weights are the paper's section 5 choice: 9, 1e5, 1, 1, 10.
// The discriminability constraint Gamma is handled separately (hard
// constraint with a violation measure for lexicographic selection).
#pragma once

#include <array>

namespace iddq::part {

struct CostWeights {
  double a1 = 9.0;
  double a2 = 1.0e5;
  double a3 = 1.0;
  double a4 = 1.0;
  double a5 = 10.0;
};

struct Costs {
  double c1 = 0.0;
  double c2 = 0.0;
  double c3 = 0.0;
  double c4 = 0.0;
  double c5 = 0.0;

  [[nodiscard]] double total(const CostWeights& w) const {
    return w.a1 * c1 + w.a2 * c2 + w.a3 * c3 + w.a4 * c4 + w.a5 * c5;
  }
  [[nodiscard]] std::array<double, 5> as_array() const {
    return {c1, c2, c3, c4, c5};
  }
};

/// Fitness for selection: lexicographic (constraint violation, cost) so an
/// infeasible partition never outranks a feasible one (hard Gamma as in the
/// paper).
struct Fitness {
  double violation = 0.0;  // 0 when all modules meet the discriminability
  double cost = 0.0;

  [[nodiscard]] bool feasible() const noexcept { return violation <= 0.0; }

  friend bool operator<(const Fitness& a, const Fitness& b) {
    if (a.violation != b.violation) return a.violation < b.violation;
    return a.cost < b.cost;
  }
};

}  // namespace iddq::part
