#include "partition/partition_io.hpp"

#include <ostream>
#include <sstream>
#include <vector>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace iddq::part {

void write_partition(std::ostream& os, const netlist::Netlist& nl,
                     const Partition& p) {
  os << "partition " << nl.name() << " modules " << p.module_count() << '\n';
  for (std::uint32_t m = 0; m < p.module_count(); ++m) {
    os << "module " << m << ':';
    for (const netlist::GateId g : p.module(m)) os << ' ' << nl.gate(g).name;
    os << '\n';
  }
}

std::string to_partition_string(const netlist::Netlist& nl,
                                const Partition& p) {
  std::ostringstream os;
  write_partition(os, nl, p);
  return os.str();
}

Partition read_partition_text(std::string_view text,
                              const netlist::Netlist& nl,
                              std::string_view source_label) {
  std::vector<std::vector<netlist::GateId>> groups;
  std::size_t declared_modules = 0;
  bool saw_header = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    line = str::trim(line);
    if (line.empty()) continue;

    const auto words = str::split_ws(line);
    if (words[0] == "partition") {
      if (words.size() != 4 || words[2] != "modules" ||
          !str::parse_size(words[3], declared_modules))
        throw ParseError(source_label, line_no,
                         "expected: partition NAME modules K");
      saw_header = true;
    } else if (words[0] == "module") {
      if (!saw_header)
        throw ParseError(source_label, line_no, "module before header");
      if (words.size() < 2)
        throw ParseError(source_label, line_no, "bad module line");
      std::vector<netlist::GateId> gates;
      // words[1] is "<index>:"; the index is informative only — order defines
      // the module number.
      for (std::size_t i = 2; i < words.size(); ++i) {
        const auto id = nl.find(words[i]);
        if (!id)
          throw ParseError(source_label, line_no,
                           "unknown gate '" + std::string(words[i]) + "'");
        gates.push_back(*id);
      }
      // Gate names may also be glued to the colon token ("module 0: a b").
      groups.push_back(std::move(gates));
    } else {
      throw ParseError(source_label, line_no,
                       "unexpected token '" + std::string(words[0]) + "'");
    }
  }
  if (!saw_header)
    throw ParseError(source_label, 0, "missing partition header");
  if (groups.size() != declared_modules)
    throw ParseError(source_label, 0,
                     "declared " + std::to_string(declared_modules) +
                         " modules, found " + std::to_string(groups.size()));
  return Partition::from_groups(nl, groups);
}

}  // namespace iddq::part
