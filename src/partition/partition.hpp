// Partition: disjoint modules (groups of logic gates) covering the CUT.
//
// Paper section 2: a partition Pi of the gate set G is a collection
// {M_1, ..., M_K} of disjoint modules covering G; every gate belongs to
// exactly one module (whole transistor groups stay together, avoiding the
// latch-up hazards of split groups). Primary inputs are never partitioned.
//
// The representation supports the evolution strategy's inner loop:
//   * O(1) move of a gate between modules (swap-pop with position index),
//   * O(|M_last|) deletion of an emptied module (swap with the last slot),
//   * stable module indices otherwise.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::part {

/// Module index sentinel for unassigned gates (primary inputs stay here).
inline constexpr std::uint32_t kUnassigned = static_cast<std::uint32_t>(-1);

class Partition {
 public:
  /// An empty partition over `gate_count` gates with `module_count` modules.
  Partition(std::size_t gate_count, std::size_t module_count);

  /// Builds a partition from explicit groups; every logic gate of `nl` must
  /// appear in exactly one group (throws iddq::Error otherwise).
  [[nodiscard]] static Partition from_groups(
      const netlist::Netlist& nl,
      std::span<const std::vector<netlist::GateId>> groups);

  [[nodiscard]] std::size_t gate_count() const noexcept {
    return module_of_.size();
  }
  [[nodiscard]] std::size_t module_count() const noexcept {
    return modules_.size();
  }

  [[nodiscard]] std::uint32_t module_of(netlist::GateId g) const {
    return module_of_[g];
  }

  [[nodiscard]] std::span<const netlist::GateId> module(
      std::uint32_t m) const {
    return modules_[m];
  }

  [[nodiscard]] std::size_t module_size(std::uint32_t m) const {
    return modules_[m].size();
  }

  /// Number of gates assigned to any module.
  [[nodiscard]] std::size_t assigned_count() const noexcept {
    return assigned_;
  }

  /// Assigns a currently-unassigned gate to module `m`.
  void assign(netlist::GateId g, std::uint32_t m);

  /// Moves an assigned gate to another module. No-op when already there.
  void move(netlist::GateId g, std::uint32_t target);

  /// Removes module `m`, which must be empty. The last module is swapped
  /// into slot m. Returns the index the swapped module previously had
  /// (== new module_count() when m was the last slot, i.e. nothing moved).
  std::uint32_t erase_empty_module(std::uint32_t m);

  /// True when every logic gate of `nl` is assigned and no module is empty.
  [[nodiscard]] bool covers(const netlist::Netlist& nl) const;

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  std::vector<std::uint32_t> module_of_;
  std::vector<std::uint32_t> pos_in_module_;
  std::vector<std::vector<netlist::GateId>> modules_;
  std::size_t assigned_ = 0;
};

}  // namespace iddq::part
