#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/rng.hpp"

namespace iddq::cluster {

using json::JsonValue;
using json::JsonWriter;

// ---------------------------------------------------------- ClusterSweep --

ClusterSweep::ClusterSweep(const SweepRequest& request, EmitFn emit)
    : id_(request.id),
      methods_(request.methods),
      budget_(request.budget),
      use_cache_(request.use_cache),
      priority_(request.priority),
      deadline_ms_(request.deadline_ms),
      merger_(request.id, request.circuits),
      shards_(request.circuits.size()),
      emit_(std::move(emit)) {}

void ClusterSweep::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return done_; });
}

bool ClusterSweep::finished() const {
  const std::scoped_lock lock(mutex_);
  return done_;
}

// --------------------------------------------------------- ClusterClient --

ClusterClient::ClusterClient(const std::vector<std::string>& endpoints,
                             std::uint64_t library_fp,
                             ClusterOptions options)
    : options_(options),
      router_(
          [&] {
            HashRing ring(options.ring_replicas);
            for (const auto& e : endpoints) ring.add(e);
            return ring;
          }(),
          library_fp) {
  for (const auto& e : endpoints) {
    if (backend_index_.contains(e)) continue;
    backend_index_.emplace(e, backends_.size());
    backends_.push_back(std::make_unique<Backend>(e));
  }
  if (options_.heartbeat_ms > 0)
    heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

ClusterClient::~ClusterClient() {
  stopping_.store(true);
  {
    // Shut down every live connection under the state lock: a concurrent
    // ensure_connected either installed its channel before this pass (and
    // gets shut down here) or observes stopping_ and aborts — no reader
    // can be left blocked on a channel this pass missed.
    const std::scoped_lock lock(state_mutex_);
    for (const auto& backend : backends_) {
      if (backend->channel != nullptr) {
        backend->channel->shutdown_read();
        backend->channel->shutdown_write();
      }
    }
    reply_cv_.notify_all();
    hb_cv_.notify_all();
  }
  if (heartbeat_.joinable()) heartbeat_.join();
  std::vector<std::thread> readers;
  {
    const std::scoped_lock lock(readers_mutex_);
    readers.swap(readers_);
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();
}

bool ClusterClient::ensure_connected(std::size_t backend) {
  Backend& b = *backends_[backend];
  if (stopping_.load()) return false;
  const std::scoped_lock connect_lock(b.connect_mutex);
  {
    const std::scoped_lock lock(state_mutex_);
    if (b.channel != nullptr) return true;
  }
  std::shared_ptr<support::FdChannel> channel;
  try {
    channel = support::connect_endpoint(b.endpoint);
  } catch (const std::exception&) {
    return false;  // refused/unreachable; the caller walks the ring onward
  }
  {
    const std::scoped_lock lock(state_mutex_);
    if (stopping_.load()) return false;  // destructor already swept
    b.channel = channel;
    b.alive.store(true);
  }
  std::thread reader([this, backend, channel] {
    reader_loop(backend, channel);
  });
  const std::scoped_lock lock(readers_mutex_);
  readers_.push_back(std::move(reader));
  return true;
}

bool ClusterClient::write_to_backend(std::size_t backend,
                                     const std::string& line) {
  Backend& b = *backends_[backend];
  std::shared_ptr<support::FdChannel> channel;
  {
    const std::scoped_lock lock(state_mutex_);
    channel = b.channel;
  }
  if (channel == nullptr) return false;
  const std::scoped_lock write_lock(b.write_mutex);
  return channel->write_line(line);
}

void ClusterClient::reader_loop(std::size_t backend,
                                std::shared_ptr<support::FdChannel> channel) {
  Backend& b = *backends_[backend];
  std::string line;
  while (channel->read_line(line)) {
    const auto event = JsonValue::parse(line);
    if (!event || !event->is_object()) continue;
    const std::string kind = event->get_string("event");
    if (kind == "hello" || kind == "bye" || kind == "accepted" ||
        kind == "sweep_done")
      continue;  // backend-session bookkeeping, not shard state
    if (kind == "stats" || kind == "pong") {
      if (kind == "pong" && event->get_string("id") == "hb") {
        // Heartbeat pong (its ping carried id "hb"): count it for the
        // prober and keep it away from the stats/ping rendezvous, which
        // would otherwise mistake it for a lost broadcast reply.
        b.hb_pongs.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const std::scoped_lock lock(state_mutex_);
      if (b.reply_pending) {
        b.reply = line;
        b.reply_pending = false;
        reply_cv_.notify_all();
      }
      continue;
    }
    const std::string id = event->get_string("id");
    Route route;
    bool owned = false;
    const bool is_error = kind == "error";
    {
      const std::scoped_lock lock(state_mutex_);
      const auto it = routes_.find(id);
      if (it != routes_.end()) {
        route = it->second;
        // A protocol error aimed at this submit means the backend will
        // never run the shard — the route ends here and the shard goes
        // back to the ring. Whoever erases a route owns its next step.
        if (is_error) {
          route.sweep->shards_[route.shard].last_error =
              b.endpoint + ": " + event->get_string("message");
          routes_.erase(it);
        }
        owned = true;
      }
    }
    if (!owned) continue;  // unattributable (or already failed-over)
    if (is_error) {
      route.sweep->merger_.reopen(route.shard);
      dispatch_shard(route.sweep, route.shard);
      continue;
    }
    const RowMerger::Forward fwd =
        route.sweep->merger_.forward(route.shard, *event, line);
    if (fwd.became_terminal) {
      const std::scoped_lock lock(state_mutex_);
      routes_.erase(id);
    }
    if (fwd.line) route.sweep->emit_(*fwd.line, fwd.droppable);
    if (fwd.became_terminal) finish_if_done(route.sweep);
  }
  handle_backend_down(backend, channel);
}

void ClusterClient::handle_backend_down(
    std::size_t backend, const std::shared_ptr<support::FdChannel>& channel) {
  Backend& b = *backends_[backend];
  std::vector<std::pair<std::shared_ptr<ClusterSweep>, std::size_t>> orphans;
  {
    const std::scoped_lock lock(state_mutex_);
    // Only this connection generation's reader tears the backend down; a
    // reconnect may already have installed a newer channel.
    if (b.channel == channel) {
      b.channel = nullptr;
      b.alive.store(false);
    }
    if (b.reply_pending) {
      b.reply_pending = false;  // a broadcast waiter gets an empty reply
      reply_cv_.notify_all();
    }
    for (auto it = routes_.begin(); it != routes_.end();) {
      if (it->second.backend == backend) {
        orphans.emplace_back(it->second.sweep, it->second.shard);
        it = routes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (stopping_.load()) {
    // Sessions drain their sweeps before the client dies; this is the
    // last-resort path that keeps a waiter from hanging anyway.
    for (const auto& [sweep, shard] : orphans) {
      (void)sweep->merger_.fail_shard(shard, "cluster client stopped");
      finish_if_done(sweep, /*emit_lines=*/false);
    }
    return;
  }
  // This thread's backend is gone and the thread has nothing left to read:
  // re-dispatching the orphans here (backoff sleeps included) costs no one
  // else anything.
  for (const auto& [sweep, shard] : orphans) {
    sweep->merger_.reopen(shard);
    dispatch_shard(sweep, shard);
  }
}

void ClusterClient::dispatch_shard(
    const std::shared_ptr<ClusterSweep>& sweep, std::size_t shard) {
  ClusterSweep::Shard& sh = sweep->shards_[shard];
  while (true) {
    if (stopping_.load()) {
      (void)sweep->merger_.fail_shard(shard, "cluster client stopped");
      finish_if_done(sweep, /*emit_lines=*/false);
      return;
    }
    if (sweep->cancel_requested_.load()) {
      const std::string line = sweep->merger_.cancel_shard(shard);
      if (!line.empty()) {
        sweep->emit_(line, /*droppable=*/false);
        finish_if_done(sweep);
      }
      return;
    }
    std::size_t attempt = 0;
    {
      const std::scoped_lock lock(state_mutex_);
      attempt = sh.attempts++;
    }
    if (attempt >= options_.max_attempts) {
      std::string reason;
      {
        const std::scoped_lock lock(state_mutex_);
        reason = sh.last_error.empty()
                     ? "no reachable backend after " +
                           std::to_string(options_.max_attempts) +
                           " attempts"
                     : sh.last_error;
      }
      const std::string line = sweep->merger_.fail_shard(shard, reason);
      if (!line.empty()) {
        sweep->emit_(line, /*droppable=*/false);
        finish_if_done(sweep);
      }
      return;
    }
    if (attempt > 0 && options_.backoff_ms > 0) {
      // Deterministic decorrelated jitter: attempt k sleeps a value in
      // [base, min(3 * previous sleep, base * 16)] picked by
      // mix_seed(jitter_seed, shard, attempt) — no wall-clock randomness
      // (identical runs back off identically), while shards that failed
      // together spread their retries instead of stampeding the next
      // backend in lockstep. Results never depend on it: only placement
      // timing changes, and rows do not depend on placement.
      const std::size_t base = options_.backoff_ms;
      std::size_t prev = base;
      {
        const std::scoped_lock lock(state_mutex_);
        if (sh.prev_backoff_ms > 0) prev = sh.prev_backoff_ms;
      }
      const std::size_t hi =
          std::min(base * 16, std::max(base, prev * 3));
      const std::uint64_t r = Rng::mix_seed(
          Rng::mix_seed(options_.jitter_seed, shard), attempt);
      const std::size_t sleep_ms =
          base + (hi > base ? static_cast<std::size_t>(r % (hi - base + 1))
                            : 0);
      {
        const std::scoped_lock lock(state_mutex_);
        sh.prev_backoff_ms = sleep_ms;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    bool dispatched = false;
    for (std::size_t k = 0; k < sh.placement.size() && !dispatched; ++k) {
      std::size_t slot = 0;
      {
        const std::scoped_lock lock(state_mutex_);
        slot = sh.next_candidate;
        sh.next_candidate = (sh.next_candidate + 1) % sh.placement.size();
      }
      const std::size_t backend = backend_index_.at(sh.placement[slot]);
      // Skip backends whose breaker is open — except on the final
      // attempt, where any candidate beats a synthesized failure.
      if (attempt + 1 < options_.max_attempts) {
        const std::scoped_lock lock(state_mutex_);
        if (backends_[backend]->breaker_open) continue;
      }
      if (!ensure_connected(backend)) continue;
      std::string route_id;
      {
        const std::scoped_lock lock(state_mutex_);
        route_id = "cx-" + std::to_string(++route_counter_);
        routes_[route_id] = Route{sweep, shard, backend};
      }
      JsonWriter circuits(JsonWriter::Kind::Array);
      circuits.element(std::string_view(sweep->merger_.circuit(shard)));
      JsonWriter seeds(JsonWriter::Kind::Array);
      seeds.element(sh.seed);
      JsonWriter methods(JsonWriter::Kind::Array);
      for (const auto& m : sweep->methods_)
        methods.element(std::string_view(m));
      JsonWriter submit;
      submit.field("op", "submit")
          .field("id", route_id)
          .field_raw("circuits", std::move(circuits).str())
          .field_raw("methods", std::move(methods).str())
          // The explicit seeds array IS the determinism carrier; "seed" is
          // never consulted when it is present.
          .field_raw("seeds", std::move(seeds).str())
          .field("budget", static_cast<std::uint64_t>(sweep->budget_))
          .field("cache", sweep->use_cache_)
          .field("priority", static_cast<double>(sweep->priority_));
      // Shipped only when set, so deadline-free submits keep their exact
      // pre-deadline bytes on the wire.
      if (sweep->deadline_ms_ > 0)
        submit.field("deadline_ms",
                     static_cast<std::uint64_t>(sweep->deadline_ms_));
      if (write_to_backend(backend, std::move(submit).str())) {
        dispatched = true;
        break;
      }
      // The write failed: this backend just died. Its reader owns the
      // failover of every route it still holds — including, possibly, the
      // one registered above. Only retry here if this thread erased it
      // first.
      bool still_ours = false;
      {
        const std::scoped_lock lock(state_mutex_);
        still_ours = routes_.erase(route_id) > 0;
      }
      if (!still_ours) return;
    }
    if (dispatched) return;
    // Full ring pass without a reachable backend: burn an attempt and
    // back off before the next pass.
  }
}

void ClusterClient::finish_if_done(const std::shared_ptr<ClusterSweep>& sweep,
                                   bool emit_lines) {
  const auto done_line = sweep->merger_.take_sweep_done();
  if (!done_line) return;
  if (emit_lines) sweep->emit_(*done_line, /*droppable=*/false);
  const std::scoped_lock lock(sweep->mutex_);
  sweep->done_ = true;
  sweep->cv_.notify_all();
}

std::shared_ptr<ClusterSweep> ClusterClient::submit_sweep(
    const SweepRequest& request, EmitFn emit) {
  auto sweep = std::shared_ptr<ClusterSweep>(
      new ClusterSweep(request, std::move(emit)));
  for (std::size_t shard = 0; shard < request.circuits.size(); ++shard) {
    ClusterSweep::Shard& sh = sweep->shards_[shard];
    // BatchRunner's derivation, computed HERE and shipped as data: the
    // backend applies seeds[0] verbatim, so rows match `iddqsyn --jobs N
    // --seed S` whatever backend (or retry) runs the shard. A caller
    // shipping explicit seeds (relayed protocol submits) wins outright.
    sh.seed = shard < request.seeds.size() ? request.seeds[shard]
                                           : Rng::mix_seed(request.seed, shard);
    sh.placement = router_.placement(router_.fingerprint(
        request.circuits[shard], sweep->methods_, sh.seed, request.budget));
  }
  for (std::size_t shard = 0; shard < request.circuits.size(); ++shard)
    dispatch_shard(sweep, shard);
  return sweep;
}

void ClusterClient::cancel(const std::shared_ptr<ClusterSweep>& sweep) {
  sweep->cancel_requested_.store(true);
  std::vector<std::pair<std::size_t, std::string>> active;
  {
    const std::scoped_lock lock(state_mutex_);
    for (const auto& [id, route] : routes_)
      if (route.sweep == sweep) active.emplace_back(route.backend, id);
  }
  for (const auto& [backend, id] : active) {
    // Best-effort: a backend that died instead will fail over, and the
    // re-dispatch path turns the shard cancelled locally.
    (void)write_to_backend(
        backend,
        JsonWriter().field("op", "cancel").field("id", id).str());
  }
}

void ClusterClient::heartbeat_loop() {
  std::unique_lock lock(state_mutex_);
  while (!stopping_.load()) {
    hb_cv_.wait_for(lock, std::chrono::milliseconds(options_.heartbeat_ms),
                    [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    lock.unlock();
    for (std::size_t i = 0; i < backends_.size(); ++i) probe_backend(i);
    lock.lock();
  }
}

void ClusterClient::probe_backend(std::size_t backend) {
  Backend& b = *backends_[backend];
  const auto now = std::chrono::steady_clock::now();
  {
    const std::scoped_lock lock(state_mutex_);
    // An open breaker rests out its cooldown; the first probe past
    // breaker_open_until is the half-open trial.
    if (b.breaker_open && now < b.breaker_open_until) return;
  }
  // A probe succeeds when the PREVIOUS heartbeat ping was answered (its
  // pong arrives on the reader thread well within one cycle), the
  // connection (re)opens, and this cycle's ping is writable. hb_pings is
  // heartbeat-thread-private; hb_pongs comes from the reader.
  bool ok = b.hb_pongs.load(std::memory_order_relaxed) >= b.hb_pings;
  if (ok) ok = ensure_connected(backend);
  if (ok) {
    ok = write_to_backend(
        backend,
        JsonWriter().field("op", "ping").field("id", "hb").str());
    if (ok) ++b.hb_pings;
  }
  if (!ok) {
    // Forget the unanswered ping: a reconnected backend must not keep
    // failing probes over a pong the dead connection swallowed.
    b.hb_pings = b.hb_pongs.load(std::memory_order_relaxed);
  }
  const std::scoped_lock lock(state_mutex_);
  if (ok) {
    b.consecutive_failures = 0;
    if (b.breaker_open) {
      // Half-open probe succeeded: close the breaker, re-admit the
      // backend so new shards route to it again.
      b.breaker_open = false;
      router_.set_node_enabled(b.endpoint, true);
      breaker_reopens_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (b.breaker_open) {
    b.breaker_open_until =
        now + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    return;
  }
  if (++b.consecutive_failures >= options_.breaker_threshold) {
    b.breaker_open = true;
    b.breaker_open_until =
        now + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    router_.set_node_enabled(b.endpoint, false);
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<std::string> ClusterClient::broadcast(
    const std::string& op_line, const std::string& reply_kind) {
  std::vector<bool> asked(backends_.size(), false);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (!ensure_connected(i)) continue;
    {
      const std::scoped_lock lock(state_mutex_);
      backends_[i]->reply_pending = true;
      backends_[i]->reply.clear();
    }
    if (write_to_backend(i, op_line)) {
      asked[i] = true;
    } else {
      const std::scoped_lock lock(state_mutex_);
      backends_[i]->reply_pending = false;
    }
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.stats_timeout_ms);
  std::vector<std::string> replies(backends_.size());
  {
    std::unique_lock lock(state_mutex_);
    reply_cv_.wait_until(lock, deadline, [&] {
      if (stopping_.load()) return true;
      for (std::size_t i = 0; i < backends_.size(); ++i)
        if (asked[i] && backends_[i]->reply_pending) return false;
      return true;
    });
    for (std::size_t i = 0; i < backends_.size(); ++i) {
      if (!asked[i]) continue;
      backends_[i]->reply_pending = false;  // timeout: stop the deposit
      replies[i] = backends_[i]->reply;
    }
  }
  // Validate the event kind; a mismatched deposit counts as no reply.
  for (auto& reply : replies) {
    if (reply.empty()) continue;
    const auto event = JsonValue::parse(reply);
    if (!event || event->get_string("event") != reply_kind) reply.clear();
  }
  return replies;
}

std::string ClusterClient::stats_line() {
  const auto replies =
      broadcast(JsonWriter().field("op", "stats").str(), "stats");
  std::uint64_t alive = 0;
  std::uint64_t workers = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  bool any_cache = false;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t drained_sessions = 0;
  JsonWriter per_backend(JsonWriter::Kind::Array);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    JsonWriter entry;
    entry.field("endpoint", std::string_view(backends_[i]->endpoint));
    {
      const std::scoped_lock lock(state_mutex_);
      entry.field("breaker", backends_[i]->breaker_open
                                 ? std::string_view("open")
                                 : std::string_view("closed"));
    }
    if (const auto event = replies[i].empty()
                               ? std::nullopt
                               : JsonValue::parse(replies[i])) {
      ++alive;
      entry.field("alive", true)
          .field("workers", event->get_u64("workers"))
          .field("submitted", event->get_u64("submitted"))
          .field("completed", event->get_u64("completed"))
          .field("failed", event->get_u64("failed"))
          .field("cancelled", event->get_u64("cancelled"))
          .field("timeouts", event->get_u64("timeouts"))
          .field("drained_sessions", event->get_u64("drained_sessions"));
      workers += event->get_u64("workers");
      submitted += event->get_u64("submitted");
      completed += event->get_u64("completed");
      failed += event->get_u64("failed");
      cancelled += event->get_u64("cancelled");
      timeouts += event->get_u64("timeouts");
      drained_sessions += event->get_u64("drained_sessions");
      if (event->find("cache_entries") != nullptr) {
        any_cache = true;
        entry.field("cache_hits", event->get_u64("cache_hits"))
            .field("cache_misses", event->get_u64("cache_misses"))
            .field("cache_entries", event->get_u64("cache_entries"));
        cache_hits += event->get_u64("cache_hits");
        cache_misses += event->get_u64("cache_misses");
        cache_entries += event->get_u64("cache_entries");
      }
    } else {
      entry.field("alive", false);
    }
    per_backend.element_raw(std::move(entry).str());
  }
  JsonWriter w;
  w.field("event", "stats")
      .field("backends", static_cast<std::uint64_t>(backends_.size()))
      .field("backends_alive", alive)
      .field("workers", workers)
      .field("submitted", submitted)
      .field("completed", completed)
      .field("failed", failed)
      .field("cancelled", cancelled)
      .field("timeouts", timeouts)
      .field("drained_sessions", drained_sessions)
      .field("breaker_opens", breaker_opens_.load(std::memory_order_relaxed))
      .field("breaker_reopens",
             breaker_reopens_.load(std::memory_order_relaxed));
  if (any_cache) {
    // Summed across backends: each host's JSONL store is one slice of the
    // logical cluster cache, so the totals describe the whole.
    w.field("cache_hits", cache_hits)
        .field("cache_misses", cache_misses)
        .field("cache_entries", cache_entries);
  }
  w.field_raw("per_backend", std::move(per_backend).str());
  return std::move(w).str();
}

std::string ClusterClient::ping_line() {
  const auto replies =
      broadcast(JsonWriter().field("op", "ping").str(), "pong");
  std::uint64_t alive = 0;
  std::uint64_t workers = 0;
  for (const auto& reply : replies) {
    if (reply.empty()) continue;
    ++alive;
    if (const auto event = JsonValue::parse(reply))
      workers += event->get_u64("workers");
  }
  return JsonWriter()
      .field("event", "pong")
      .field("protocol", std::uint64_t{1})
      .field("backends", static_cast<std::uint64_t>(backends_.size()))
      .field("backends_alive", alive)
      .field("workers", workers)
      .str();
}

}  // namespace iddq::cluster
