// Consistent-hash ring over backend endpoints (docs/cluster.md).
//
// Each node is projected onto a 64-bit ring at `replicas` pseudo-random
// points (virtual nodes): the endpoint through the endian-stable FNV-1a
// stream (support/hash.hpp), each replica index through the splitmix64
// expander (Rng::mix_seed) so a node's points are mutually uncorrelated.
// Both are pure functions of the inputs, so two front-ends configured
// with the same endpoint list route every key identically, process
// boundaries and restarts included. A key is owned by the first
// ring point clockwise from it; successors() walks onward and yields each
// DISTINCT node once, which is exactly the failover order the cluster
// client retries dead backends in.
//
// Properties the tests pin:
//  * determinism — owner(key) depends only on the node set and key;
//  * minimal disruption — removing a node remaps only the keys it owned;
//  * spread — virtual nodes keep per-node key shares roughly even.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iddq::cluster {

class HashRing {
 public:
  /// `replicas` = virtual nodes per endpoint; more replicas smooth the
  /// key distribution at O(replicas * nodes) ring size.
  explicit HashRing(std::size_t replicas = 64);

  /// Adds an endpoint (no-op when already present).
  void add(const std::string& node);

  /// Removes an endpoint; keys it owned move to their ring successors,
  /// every other key keeps its owner.
  void remove(const std::string& node);

  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<std::string>& nodes() const noexcept {
    return nodes_;
  }

  /// The node owning `key`: the first ring point at or clockwise past it.
  /// Must not be called on an empty ring.
  [[nodiscard]] const std::string& owner(std::uint64_t key) const;

  /// All distinct nodes in ring order starting at `key`'s owner — the
  /// dispatch-then-failover order for a shard. Size == size().
  [[nodiscard]] std::vector<std::string> successors(std::uint64_t key) const;

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t node;  // index into nodes_
  };

  void rebuild();
  [[nodiscard]] std::size_t first_at_or_after(std::uint64_t key) const;

  std::size_t replicas_;
  std::vector<std::string> nodes_;
  std::vector<Point> ring_;  // sorted by (position, node)
};

}  // namespace iddq::cluster
