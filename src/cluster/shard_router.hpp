// Run-key shard routing for the cluster front-end (docs/cluster.md).
//
// A shard's routing fingerprint approximates the backend's ResultCache key
// (core/result_cache.hpp): the circuit's structural fingerprint, the
// library fingerprint, the resolved method list, the shard's explicit base
// seed, and the evaluation budget. Hashing THAT — rather than, say, the
// connection or a round-robin counter — is the whole point: a repeated
// sweep produces the same fingerprints, the ring maps them to the same
// backends, and the shards land on hosts whose JSONL caches already hold
// their rows. Config knobs that do not enter the fingerprint (rail, disc,
// generations) are uniform across a well-configured cluster, so omitting
// them costs placement nothing.
//
// Circuits are fingerprinted by loading them locally (builtins and .bench
// paths, memoized); a spec the front-end cannot load falls back to hashing
// the spec string — still deterministic, and the backend, not the router,
// is the authority on whether the shard can run at all.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "cluster/hash_ring.hpp"

namespace iddq::cluster {

class ShardRouter {
 public:
  /// `ring` carries the backend endpoints; `library_fp` is the
  /// lib::library_fingerprint of the library the backends serve.
  ShardRouter(HashRing ring, std::uint64_t library_fp);

  /// Routing fingerprint of one shard (see file comment for the recipe).
  [[nodiscard]] std::uint64_t fingerprint(
      const std::string& circuit, std::span<const std::string> methods,
      std::uint64_t shard_seed, std::size_t budget);

  /// Failover order for a fingerprint: owner first, then distinct ring
  /// successors. Nodes evicted by the health checker (set_node_enabled)
  /// are removed from the active ring — their keys remap to successors —
  /// but stay appended at the tail of every placement as last-resort
  /// candidates, so a shard can still reach them when every healthy
  /// backend has failed it.
  [[nodiscard]] std::vector<std::string> placement(std::uint64_t fp) const;

  /// Evicts (`enabled == false`) or re-admits a node. Idempotent and
  /// thread-safe against concurrent placement() — the cluster heartbeat
  /// thread flips this while sessions route (docs/robustness.md).
  void set_node_enabled(const std::string& node, bool enabled);

  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }

 private:
  [[nodiscard]] std::uint64_t circuit_fingerprint(const std::string& spec);

  const HashRing ring_;  // full membership; never mutated after build
  std::uint64_t library_fp_;
  mutable std::mutex mutex_;  // guards circuit_fps_ + active_ring_/disabled_
  std::map<std::string, std::uint64_t> circuit_fps_;
  /// ring_ minus the disabled nodes; rebuilt on each toggle (eviction is
  /// rare — heartbeat threshold crossings — so rebuild cost is noise).
  HashRing active_ring_;
  std::vector<std::string> disabled_;
};

}  // namespace iddq::cluster
