#include "cluster/shard_router.hpp"

#include <algorithm>
#include <utility>

#include "netlist/circuit_loader.hpp"
#include "netlist/fingerprint.hpp"
#include "support/hash.hpp"

namespace iddq::cluster {

ShardRouter::ShardRouter(HashRing ring, std::uint64_t library_fp)
    : ring_(std::move(ring)),
      library_fp_(library_fp),
      active_ring_(ring_) {}

std::vector<std::string> ShardRouter::placement(std::uint64_t fp) const {
  const std::scoped_lock lock(mutex_);
  if (disabled_.empty()) return ring_.successors(fp);
  // Healthy nodes in active-ring order (the evicted node's keys remap to
  // its successors), then the evicted nodes in full-ring order so every
  // backend still appears exactly once as a last-resort candidate.
  std::vector<std::string> order = active_ring_.successors(fp);
  for (const auto& node : ring_.successors(fp)) {
    bool present = false;
    for (const auto& have : order) present = present || have == node;
    if (!present) order.push_back(node);
  }
  return order;
}

void ShardRouter::set_node_enabled(const std::string& node, bool enabled) {
  const std::scoped_lock lock(mutex_);
  const auto it = std::find(disabled_.begin(), disabled_.end(), node);
  if (enabled == (it == disabled_.end())) return;  // already in that state
  if (enabled)
    disabled_.erase(it);
  else
    disabled_.push_back(node);
  active_ring_ = ring_;
  for (const auto& down : disabled_) active_ring_.remove(down);
}

std::uint64_t ShardRouter::circuit_fingerprint(const std::string& spec) {
  {
    const std::scoped_lock lock(mutex_);
    const auto it = circuit_fps_.find(spec);
    if (it != circuit_fps_.end()) return it->second;
  }
  // Load outside the lock: .bench files can be slow, and two sessions
  // racing the same spec just compute the same value twice.
  std::uint64_t fp = 0;
  try {
    fp = netlist::structural_fingerprint(netlist::load_circuit(spec));
  } catch (...) {
    // Unloadable here (missing file, unknown builtin): hash the spec text
    // so routing stays deterministic and the backend decides the
    // shard's fate. Structurally identical circuits under different paths
    // lose cache affinity in this fallback — nothing more.
    Hash64 h;
    h.mix_string("spec-fallback");
    h.mix_string(spec);
    fp = h.value();
  }
  const std::scoped_lock lock(mutex_);
  return circuit_fps_.emplace(spec, fp).first->second;
}

std::uint64_t ShardRouter::fingerprint(const std::string& circuit,
                                       std::span<const std::string> methods,
                                       std::uint64_t shard_seed,
                                       std::size_t budget) {
  Hash64 h;
  h.mix_string("cluster-route-v1");
  h.mix_u64(circuit_fingerprint(circuit));
  h.mix_u64(library_fp_);
  h.mix_u64(shard_seed);
  h.mix_size(budget);
  h.mix_size(methods.size());
  for (const auto& m : methods) h.mix_string(m);
  return h.value();
}

}  // namespace iddq::cluster
