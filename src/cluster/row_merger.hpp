// Merges per-backend event streams into one client session stream
// (docs/cluster.md, "Determinism contract").
//
// Every shard of a cluster sweep runs as a width-1 submit on some backend;
// the merger maps each backend event back to its shard and rewrites ONLY
// the two placement-dependent envelope fields — the backend-local sweep
// "id" becomes the client's, the backend-local "job" number becomes
// shard+1 (the number a single direct server would have assigned). The
// payload bytes after "job" are forwarded untouched, so row doubles keep
// the exact 17-significant-digit text the backend emitted and the merged
// stream stays byte-identical to a single-server run.
//
// Failover bookkeeping rides on the same object: after reopen(shard) a
// retried shard's repeated queued/running lifecycle is suppressed and its
// rows dedupe by "index", so a shard that died after streaming some rows
// resumes without duplicating them (the retried run reproduces identical
// bytes — seeds are shipped data). Terminal accounting feeds the single
// sweep_done the merger emits once every shard is terminal.
//
// Thread-safe: backend reader threads call forward() concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "support/json.hpp"

namespace iddq::cluster {

class RowMerger {
 public:
  RowMerger(std::string sweep_id, std::vector<std::string> circuits);

  struct Forward {
    /// Rewritten line to emit, or nullopt to suppress (duplicate row,
    /// repeated lifecycle on retry, backend bookkeeping).
    std::optional<std::string> line;
    /// This event moved the shard to a terminal state.
    bool became_terminal = false;
    /// The forwarded line is a progress tick (droppable delivery class).
    bool droppable = false;
  };

  /// Processes one backend job event already attributed to `shard`.
  [[nodiscard]] Forward forward(std::size_t shard,
                                const json::JsonValue& event,
                                std::string_view raw_line);

  /// Marks `shard` as retried after its backend died: subsequent
  /// queued/running events are suppressed and rows keep deduping.
  void reopen(std::size_t shard);

  /// Synthesizes the failed terminal for a shard whose retries are
  /// exhausted. Returns the event line to emit ("" when already terminal).
  [[nodiscard]] std::string fail_shard(std::size_t shard,
                                       const std::string& error);

  /// Synthesizes the cancelled terminal for a shard cancelled before it
  /// could be (re)dispatched. Returns "" when already terminal.
  [[nodiscard]] std::string cancel_shard(std::size_t shard);

  [[nodiscard]] bool shard_terminal(std::size_t shard) const;
  [[nodiscard]] bool all_terminal() const;

  /// The sweep_done line, exactly once, after the last shard turned
  /// terminal; nullopt before that (or on every later call).
  [[nodiscard]] std::optional<std::string> take_sweep_done();

  [[nodiscard]] const std::string& circuit(std::size_t shard) const {
    return circuits_[shard];
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return circuits_.size();
  }

 private:
  struct ShardState {
    std::set<std::uint64_t> rows_forwarded;  // deduped by row "index"
    std::size_t attempt = 0;                 // reopen() count
    bool terminal = false;
  };

  /// Rebuilds the envelope prefix (event/id/circuit/job) around the
  /// payload bytes of `raw_line`, which start right after the "job"
  /// number and are copied verbatim.
  [[nodiscard]] std::string rewrite(std::string_view raw_line,
                                    std::string_view kind,
                                    std::string_view circuit,
                                    std::size_t shard) const;
  [[nodiscard]] std::string synth_terminal(std::size_t shard,
                                           const char* kind,
                                           const std::string* error);

  std::string sweep_id_;
  std::vector<std::string> circuits_;

  mutable std::mutex mutex_;
  std::vector<ShardState> shards_;
  std::size_t terminal_count_ = 0;
  std::size_t ok_ = 0;
  std::size_t failed_ = 0;
  std::size_t cancelled_ = 0;
  bool sweep_done_taken_ = false;
};

}  // namespace iddq::cluster
