#include "cluster/hash_ring.hpp"

#include <algorithm>

#include "support/hash.hpp"
#include "support/rng.hpp"

namespace iddq::cluster {

HashRing::HashRing(std::size_t replicas)
    : replicas_(std::max<std::size_t>(1, replicas)) {}

void HashRing::add(const std::string& node) {
  if (std::find(nodes_.begin(), nodes_.end(), node) != nodes_.end()) return;
  nodes_.push_back(node);
  rebuild();
}

void HashRing::remove(const std::string& node) {
  const auto it = std::find(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end()) return;
  nodes_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  ring_.clear();
  ring_.reserve(nodes_.size() * replicas_);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    // Endpoint through the cache's endian-stable FNV-1a, then each
    // replica index through the splitmix64 expander: the ring layout is
    // a pure function of the configured node set, and the avalanche step
    // decorrelates a node's replicas (raw FNV over inputs differing in
    // one small integer clusters positions into a lattice, which defeats
    // the point of virtual nodes).
    Hash64 h;
    h.mix_string(nodes_[n]);
    for (std::size_t r = 0; r < replicas_; ++r)
      ring_.push_back({Rng::mix_seed(h.value(), r), n});
  }
  // Position collisions between nodes are broken by node index so the
  // layout stays deterministic regardless of add() order history.
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.position != b.position ? a.position < b.position
                                    : a.node < b.node;
  });
}

std::size_t HashRing::first_at_or_after(std::uint64_t key) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const Point& p, std::uint64_t k) { return p.position < k; });
  // Wrap past the highest point back to the ring start.
  return it == ring_.end() ? 0
                           : static_cast<std::size_t>(it - ring_.begin());
}

const std::string& HashRing::owner(std::uint64_t key) const {
  return nodes_[ring_[first_at_or_after(key)].node];
}

std::vector<std::string> HashRing::successors(std::uint64_t key) const {
  std::vector<std::string> order;
  if (nodes_.empty()) return order;
  order.reserve(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  const std::size_t start = first_at_or_after(key);
  for (std::size_t i = 0; i < ring_.size() && order.size() < nodes_.size();
       ++i) {
    const Point& p = ring_[(start + i) % ring_.size()];
    if (seen[p.node]) continue;
    seen[p.node] = true;
    order.push_back(nodes_[p.node]);
  }
  return order;
}

}  // namespace iddq::cluster
