// ClusterClient — fans sweeps over N iddqsyn_server backends
// (docs/cluster.md).
//
// One client owns one persistent line-JSON connection per backend plus a
// reader thread demultiplexing its event stream. A sweep is split into
// width-1 backend submits (one per circuit): each shard's base seed is
// computed up front with the BatchRunner derivation mix_seed(seed, shard)
// and shipped explicitly in the submit's "seeds" array — seeds are DATA
// attached to the shard, so which backend runs it (or re-runs it after a
// failure) cannot change its rows. Placement consistent-hashes the shard's
// run-key fingerprint (ShardRouter) so repeat traffic lands on backends
// whose ResultCaches are already warm.
//
// Failover: when a backend dies (connection drops, connect refused, or a
// submit is rejected with an id-tagged protocol error), its in-flight
// shards are re-dispatched onto live ring successors with bounded
// exponential backoff; RowMerger suppresses the retried lifecycle echoes
// and dedupes re-streamed rows, keeping the merged client stream
// byte-identical to a single direct server. A shard whose attempts are
// exhausted gets a synthesized `failed` terminal — the sweep always
// completes.
//
// stats_line()/ping_line() fan the corresponding op to every backend and
// aggregate the replies (docs/cluster.md, "Operating it").
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/row_merger.hpp"
#include "cluster/shard_router.hpp"
#include "support/transport.hpp"

namespace iddq::cluster {

struct ClusterOptions {
  /// Virtual nodes per backend on the hash ring.
  std::size_t ring_replicas = 64;
  /// Dispatch attempts per shard (first try included) before the cluster
  /// synthesizes a `failed` terminal.
  std::size_t max_attempts = 3;
  /// Base retry backoff. Attempt k sleeps a deterministic decorrelated-
  /// jitter value in [backoff_ms, min(3 * previous sleep, backoff_ms *
  /// 16)] — the jitter source is Rng::mix_seed(jitter_seed, shard,
  /// attempt), not wall clock, so retry schedules reproduce exactly while
  /// still de-synchronizing shards that fail together.
  std::size_t backoff_ms = 200;
  /// Seeds the retry jitter (fixed default: identical runs back off
  /// identically).
  std::uint64_t jitter_seed = 0x1DD0BACC;
  /// How long stats_line()/ping_line() wait for backend replies.
  std::size_t stats_timeout_ms = 2000;
  /// Health-check cadence (--heartbeat-ms): every heartbeat_ms each
  /// backend gets a `ping` probe (id "hb"); an unanswered or unwritable
  /// probe counts one failure toward the circuit breaker. 0 = off.
  std::size_t heartbeat_ms = 0;
  /// Consecutive probe failures that open a backend's breaker (the
  /// backend is evicted from the active ring; docs/robustness.md).
  std::size_t breaker_threshold = 3;
  /// Cooldown before an open breaker half-opens: the next probe after
  /// breaker_cooldown_ms re-admits the backend on success, re-arms the
  /// cooldown on failure.
  std::size_t breaker_cooldown_ms = 1000;
};

struct SweepRequest {
  std::string id;
  std::vector<std::string> circuits;
  std::vector<std::string> methods{"evolution", "standard"};
  std::uint64_t seed = 1;
  /// Explicit per-shard base seeds (same length as circuits); when present
  /// they replace the mix_seed(seed, shard) derivation, mirroring the
  /// protocol's "seeds" submit field.
  std::vector<std::uint64_t> seeds;
  std::size_t budget = 0;
  bool use_cache = true;
  int priority = 0;
  /// Per-job deadline forwarded verbatim to every shard's backend submit
  /// (0 = omit the field; the backend's own default applies).
  std::size_t deadline_ms = 0;
};

/// Sink for merged event lines; `droppable` marks progress ticks so the
/// caller can apply its backpressure class. Called from backend reader
/// threads and from the submitting thread; must not block indefinitely.
using EmitFn = std::function<void(const std::string& line, bool droppable)>;

/// Handle of one in-flight cluster sweep; created by submit_sweep.
class ClusterSweep {
 public:
  /// Blocks until every shard is terminal and sweep_done was emitted.
  void wait();
  [[nodiscard]] bool finished() const;
  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 private:
  friend class ClusterClient;
  struct Shard {
    std::uint64_t seed = 0;
    std::vector<std::string> placement;  // ring failover order
    std::size_t next_candidate = 0;      // rotates through placement
    std::size_t attempts = 0;
    std::size_t prev_backoff_ms = 0;  // decorrelated-jitter state
    std::string last_error;  // latest backend rejection, for fail_shard
  };

  ClusterSweep(const SweepRequest& request, EmitFn emit);

  std::string id_;
  std::vector<std::string> methods_;
  std::size_t budget_ = 0;
  bool use_cache_ = true;
  int priority_ = 0;
  std::size_t deadline_ms_ = 0;
  RowMerger merger_;
  std::vector<Shard> shards_;
  EmitFn emit_;
  std::atomic<bool> cancel_requested_{false};
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
};

class ClusterClient {
 public:
  /// `endpoints` name the backends (--submit convention: host:port or unix
  /// socket path; duplicates ignored); `library_fp` feeds the routing
  /// fingerprint. Connections are opened lazily on first dispatch.
  ClusterClient(const std::vector<std::string>& endpoints,
                std::uint64_t library_fp, ClusterOptions options = {});
  ~ClusterClient();

  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Routes and dispatches every shard (blocking until each is written to
  /// a backend, has exhausted its attempts, or the sweep is cancelled) and
  /// returns the handle; events stream to `emit` as backends produce them.
  std::shared_ptr<ClusterSweep> submit_sweep(const SweepRequest& request,
                                             EmitFn emit);

  /// Cooperatively cancels a sweep: forwards cancel to the backends
  /// holding its shards; shards between dispatches turn cancelled locally.
  void cancel(const std::shared_ptr<ClusterSweep>& sweep);

  /// Aggregate `stats` event across all reachable backends: summed
  /// service/cache counters plus a per_backend array (docs/cluster.md).
  [[nodiscard]] std::string stats_line();

  /// Aggregate `pong` event: pings every backend, reports backends/alive
  /// and the summed worker count of the ones that answered.
  [[nodiscard]] std::string ping_line();

  [[nodiscard]] std::size_t backend_count() const noexcept {
    return backends_.size();
  }

 private:
  struct Backend {
    explicit Backend(std::string ep) : endpoint(std::move(ep)) {}
    const std::string endpoint;
    std::mutex connect_mutex;  // serializes (re)connect attempts
    std::mutex write_mutex;    // serializes channel writes
    // Current connection, shared with its reader thread; null while down.
    // Guarded by ClusterClient::state_mutex_.
    std::shared_ptr<support::FdChannel> channel;
    std::atomic<bool> alive{false};
    // stats/ping rendezvous (guarded by state_mutex_, signalled through
    // reply_cv_): the reader thread deposits the next matching reply.
    bool reply_pending = false;
    std::string reply;
    // Circuit breaker (docs/robustness.md). All guarded by state_mutex_
    // except hb_pongs, which the reader thread bumps lock-free when a
    // pong tagged "hb" arrives.
    std::size_t consecutive_failures = 0;
    bool breaker_open = false;
    std::chrono::steady_clock::time_point breaker_open_until{};
    std::uint64_t hb_pings = 0;  // heartbeat thread only
    std::atomic<std::uint64_t> hb_pongs{0};
  };

  /// A dispatched shard: backend submit id -> where its events belong.
  struct Route {
    std::shared_ptr<ClusterSweep> sweep;
    std::size_t shard = 0;
    std::size_t backend = 0;
  };

  bool ensure_connected(std::size_t backend);
  void reader_loop(std::size_t backend,
                   std::shared_ptr<support::FdChannel> channel);
  void handle_backend_down(std::size_t backend,
                           const std::shared_ptr<support::FdChannel>& channel);
  void dispatch_shard(const std::shared_ptr<ClusterSweep>& sweep,
                      std::size_t shard);
  /// Emits sweep_done (exactly once) and wakes waiters when the last
  /// shard turned terminal.
  void finish_if_done(const std::shared_ptr<ClusterSweep>& sweep,
                      bool emit_lines = true);
  bool write_to_backend(std::size_t backend, const std::string& line);
  /// Heartbeat prober (started when options_.heartbeat_ms > 0): probes
  /// every backend each cycle, drives the per-backend circuit breaker,
  /// and evicts/re-admits backends on the router's active ring.
  void heartbeat_loop();
  void probe_backend(std::size_t backend);
  /// Broadcasts `op` to every reachable backend and collects one reply
  /// line per backend whose event matches `reply_kind` (empty string on
  /// timeout/unreachable), within stats_timeout_ms.
  std::vector<std::string> broadcast(const std::string& op_line,
                                     const std::string& reply_kind);

  ClusterOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::unordered_map<std::string, std::size_t> backend_index_;

  std::mutex state_mutex_;  // routes_, channels, rendezvous, counters
  std::condition_variable reply_cv_;
  std::unordered_map<std::string, Route> routes_;
  std::uint64_t route_counter_ = 0;
  std::atomic<bool> stopping_{false};

  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;  // every reader generation ever spawned

  // Heartbeat thread (empty when heartbeat_ms == 0); hb_cv_ wakes it for
  // shutdown so the destructor never waits out a full cycle.
  std::thread heartbeat_;
  std::condition_variable hb_cv_;
  std::atomic<std::uint64_t> breaker_opens_{0};
  std::atomic<std::uint64_t> breaker_reopens_{0};
};

}  // namespace iddq::cluster
