#include "cluster/row_merger.hpp"

#include <utility>

namespace iddq::cluster {

using json::JsonWriter;

RowMerger::RowMerger(std::string sweep_id, std::vector<std::string> circuits)
    : sweep_id_(std::move(sweep_id)),
      circuits_(std::move(circuits)),
      shards_(circuits_.size()) {}

std::string RowMerger::rewrite(std::string_view raw_line,
                               std::string_view kind,
                               std::string_view circuit,
                               std::size_t shard) const {
  // Backend job events open with a fixed envelope (core/job_protocol.cpp,
  // event_json): {"event":K,"id":I,"circuit":C,"job":N, <payload>}. Splice
  // a fresh envelope onto the payload, whose bytes — all the doubles —
  // must not be touched.
  const std::size_t job_key = raw_line.find(",\"job\":");
  std::size_t payload = std::string_view::npos;
  if (job_key != std::string_view::npos) {
    payload = job_key + 7;
    while (payload < raw_line.size() && raw_line[payload] >= '0' &&
           raw_line[payload] <= '9')
      ++payload;
  }
  std::string out = "{\"event\":";
  json::append_json_quoted(out, kind);
  out += ",\"id\":";
  json::append_json_quoted(out, sweep_id_);
  out += ",\"circuit\":";
  json::append_json_quoted(out, circuit);
  out += ",\"job\":";
  out += std::to_string(shard + 1);
  if (payload != std::string_view::npos)
    out.append(raw_line.substr(payload));
  else
    out += '}';  // envelope-only event from a nonconforming emitter
  return out;
}

RowMerger::Forward RowMerger::forward(std::size_t shard,
                                      const json::JsonValue& event,
                                      std::string_view raw_line) {
  const std::string kind = event.get_string("event");
  const std::string circuit = event.get_string("circuit");
  Forward result;
  const std::scoped_lock lock(mutex_);
  ShardState& state = shards_[shard];
  if (state.terminal) return result;  // stale events after failover
  if (kind == "queued" || kind == "running") {
    // A retried shard re-announces on its new backend; the client already
    // saw this lifecycle step, so only the first attempt's copy forwards.
    if (state.attempt == 0)
      result.line = rewrite(raw_line, kind, circuit, shard);
    return result;
  }
  if (kind == "progress") {
    result.line = rewrite(raw_line, kind, circuit, shard);
    result.droppable = true;
    return result;
  }
  if (kind == "row") {
    // Retried shards reproduce byte-identical rows (seeds are data); each
    // row index reaches the client exactly once.
    if (state.rows_forwarded.insert(event.get_u64("index")).second)
      result.line = rewrite(raw_line, kind, circuit, shard);
    return result;
  }
  if (kind == "done" || kind == "failed" || kind == "cancelled") {
    state.terminal = true;
    ++terminal_count_;
    if (kind == "done") ++ok_;
    if (kind == "failed") ++failed_;
    if (kind == "cancelled") ++cancelled_;
    result.line = rewrite(raw_line, kind, circuit, shard);
    result.became_terminal = true;
    return result;
  }
  // accepted / sweep_done / anything session-level from the backend is
  // cluster bookkeeping, never the client's business.
  return result;
}

void RowMerger::reopen(std::size_t shard) {
  const std::scoped_lock lock(mutex_);
  ++shards_[shard].attempt;
}

std::string RowMerger::synth_terminal(std::size_t shard, const char* kind,
                                      const std::string* error) {
  const std::scoped_lock lock(mutex_);
  ShardState& state = shards_[shard];
  if (state.terminal) return "";
  state.terminal = true;
  ++terminal_count_;
  JsonWriter w;
  w.field("event", kind)
      .field("id", sweep_id_)
      .field("circuit", circuits_[shard])
      .field("job", static_cast<std::uint64_t>(shard + 1));
  if (error != nullptr) {
    ++failed_;
    w.field("error", *error);
  } else {
    ++cancelled_;
  }
  return std::move(w).str();
}

std::string RowMerger::fail_shard(std::size_t shard,
                                  const std::string& error) {
  return synth_terminal(shard, "failed", &error);
}

std::string RowMerger::cancel_shard(std::size_t shard) {
  return synth_terminal(shard, "cancelled", nullptr);
}

bool RowMerger::shard_terminal(std::size_t shard) const {
  const std::scoped_lock lock(mutex_);
  return shards_[shard].terminal;
}

bool RowMerger::all_terminal() const {
  const std::scoped_lock lock(mutex_);
  return terminal_count_ == shards_.size();
}

std::optional<std::string> RowMerger::take_sweep_done() {
  const std::scoped_lock lock(mutex_);
  if (sweep_done_taken_ || terminal_count_ != shards_.size())
    return std::nullopt;
  sweep_done_taken_ = true;
  return JsonWriter()
      .field("event", "sweep_done")
      .field("id", sweep_id_)
      .field("ok", ok_)
      .field("failed", failed_)
      .field("cancelled", cancelled_)
      .str();
}

}  // namespace iddq::cluster
