// Per-module IDDQ test simulation.
//
// Simulates the complete BIC-sensor test of figure 1: for every test vector,
// the quiescent current of each module is the sum of its gates' leakages
// plus any activated defect current attributed to the module's virtual
// ground; the module's sensor raises FAIL when its current exceeds
// IDDQ_th. A defect is *detected* when at least one vector makes at least
// one sensor fail — and only if that sensor's fault-free current is itself
// below the threshold (otherwise the sensor fails good circuits too and
// carries no information; this is exactly the discriminability problem of
// section 1). The same simulation with a single module (K = 1) reproduces
// off-chip monitoring: once the whole-chip leakage exceeds IDDQ_th, nothing
// is detectable and partitioning becomes mandatory.
#pragma once

#include <span>
#include <vector>

#include "library/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "partition/partition.hpp"
#include "sim/faults.hpp"
#include "sim/logic_sim.hpp"
#include "sim/patterns.hpp"

namespace iddq::sim {

struct IddqSimConfig {
  double vdd_mv = 5000.0;
  double iddq_th_ua = 1.5;
};

struct DetectionResult {
  std::size_t detected = 0;
  std::size_t total = 0;
  /// detected/total in [0,1]; 0 for an empty fault list.
  [[nodiscard]] double coverage() const {
    return total == 0 ? 0.0
                      : static_cast<double>(detected) /
                            static_cast<double>(total);
  }
};

class IddqSimulator {
 public:
  IddqSimulator(const netlist::Netlist& nl, const lib::CellLibrary& library,
                IddqSimConfig config);

  /// Fault-free quiescent current of each module, in uA (vector-independent
  /// in this leakage model).
  [[nodiscard]] std::vector<double> fault_free_module_current(
      const part::Partition& p) const;

  /// True when some vector of `patterns` makes some module sensor exceed
  /// IDDQ_th with bridge `f` present.
  [[nodiscard]] bool detects_bridge(const part::Partition& p, const Bridge& f,
                                    std::span<const PatternBatch> patterns)
      const;

  /// Ditto for a gate-oxide short.
  [[nodiscard]] bool detects_short(const part::Partition& p,
                                   const GateOxideShort& f,
                                   std::span<const PatternBatch> patterns)
      const;

  /// Full fault-list coverage.
  [[nodiscard]] DetectionResult coverage(const part::Partition& p,
                                         const FaultList& faults,
                                         std::span<const PatternBatch>
                                             patterns) const;

 private:
  const netlist::Netlist* nl_;
  LogicSim sim_;
  IddqSimConfig config_;
  std::vector<lib::CellParams> cells_;
};

}  // namespace iddq::sim
