#include "sim/iddq_sim.hpp"

#include "support/error.hpp"
#include "support/units.hpp"

namespace iddq::sim {

IddqSimulator::IddqSimulator(const netlist::Netlist& nl,
                             const lib::CellLibrary& library,
                             IddqSimConfig config)
    : nl_(&nl), sim_(nl), config_(config), cells_(lib::bind_cells(nl, library)) {
  require(config_.iddq_th_ua > 0.0, "iddq sim: threshold must be positive");
}

std::vector<double> IddqSimulator::fault_free_module_current(
    const part::Partition& p) const {
  std::vector<double> current(p.module_count(), 0.0);
  for (std::uint32_t m = 0; m < p.module_count(); ++m)
    for (const netlist::GateId g : p.module(m))
      current[m] += units::na_to_ua(cells_[g].ileak_na);
  return current;
}

bool IddqSimulator::detects_bridge(const part::Partition& p, const Bridge& f,
                                   std::span<const PatternBatch> patterns)
    const {
  const auto leak = fault_free_module_current(p);
  for (const auto& batch : patterns) {
    const auto values = sim_.run(batch.words);
    // Lanes where the two bridged nets disagree: the defect is activated.
    PatternWord active = values[f.a] ^ values[f.b];
    if (batch.pattern_count < 64)
      active &= (PatternWord{1} << batch.pattern_count) - 1;
    if (active == 0) continue;
    // The ground-side sensor (module of the gate driving 0) sees the
    // current; which gate drives 0 depends on the lane.
    const double i_defect = bridge_current_ua(
        f, config_.vdd_mv, cells_[f.a].rg_kohm, cells_[f.b].rg_kohm);
    const PatternWord a_is_zero = active & ~values[f.a];
    const PatternWord b_is_zero = active & ~values[f.b];
    // A sensor only discriminates when its fault-free current passes: a
    // module already leaking above IDDQ_th fails good circuits as well.
    if (a_is_zero != 0) {
      const std::uint32_t m = p.module_of(f.a);
      if (m != part::kUnassigned && leak[m] <= config_.iddq_th_ua &&
          leak[m] + i_defect > config_.iddq_th_ua)
        return true;
    }
    if (b_is_zero != 0) {
      const std::uint32_t m = p.module_of(f.b);
      if (m != part::kUnassigned && leak[m] <= config_.iddq_th_ua &&
          leak[m] + i_defect > config_.iddq_th_ua)
        return true;
    }
  }
  return false;
}

bool IddqSimulator::detects_short(const part::Partition& p,
                                  const GateOxideShort& f,
                                  std::span<const PatternBatch> patterns)
    const {
  const auto leak = fault_free_module_current(p);
  const netlist::GateId driver = nl_->gate(f.gate).fanins[f.pin];
  // The defect path enters the ground network at the driving gate; a PI
  // driver has no sensor (pad-side path) — attribute to the defective gate's
  // module instead, which physically shares the virtual rail.
  const std::uint32_t m = netlist::is_logic(nl_->gate(driver).kind)
                              ? p.module_of(driver)
                              : p.module_of(f.gate);
  if (m == part::kUnassigned) return false;
  if (leak[m] > config_.iddq_th_ua) return false;  // sensor fails good chips
  const double rdrv = netlist::is_logic(nl_->gate(driver).kind)
                          ? cells_[driver].rg_kohm
                          : 1.0;  // pad driver impedance
  const double i_defect = short_current_ua(f, config_.vdd_mv, rdrv);
  if (leak[m] + i_defect <= config_.iddq_th_ua) return false;
  for (const auto& batch : patterns) {
    const auto values = sim_.run(batch.words);
    PatternWord active = values[driver];  // short conducts when driver is 1
    if (batch.pattern_count < 64)
      active &= (PatternWord{1} << batch.pattern_count) - 1;
    if (active != 0) return true;
  }
  return false;
}

DetectionResult IddqSimulator::coverage(const part::Partition& p,
                                        const FaultList& faults,
                                        std::span<const PatternBatch>
                                            patterns) const {
  DetectionResult r;
  r.total = faults.size();
  for (const auto& f : faults.bridges)
    if (detects_bridge(p, f, patterns)) ++r.detected;
  for (const auto& f : faults.shorts)
    if (detects_short(p, f, patterns)) ++r.detected;
  return r;
}

}  // namespace iddq::sim
