#include "sim/logic_sim.hpp"

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::sim {

LogicSim::LogicSim(const netlist::Netlist& nl)
    : nl_(&nl), order_(netlist::topological_order(nl)) {}

std::vector<PatternWord> LogicSim::run(
    std::span<const PatternWord> input_words) const {
  const auto inputs = nl_->primary_inputs();
  require(input_words.size() == inputs.size(),
          "logic sim: need one pattern word per primary input");
  std::vector<PatternWord> value(nl_->gate_count(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    value[inputs[i]] = input_words[i];

  for (const netlist::GateId id : order_) {
    const auto& g = nl_->gate(id);
    if (g.fanins.empty()) continue;  // primary input
    PatternWord v = 0;
    switch (g.kind) {
      case netlist::GateKind::kBuf:
        v = value[g.fanins[0]];
        break;
      case netlist::GateKind::kNot:
        v = ~value[g.fanins[0]];
        break;
      case netlist::GateKind::kAnd:
      case netlist::GateKind::kNand:
        v = ~PatternWord{0};
        for (const netlist::GateId f : g.fanins) v &= value[f];
        if (g.kind == netlist::GateKind::kNand) v = ~v;
        break;
      case netlist::GateKind::kOr:
      case netlist::GateKind::kNor:
        v = 0;
        for (const netlist::GateId f : g.fanins) v |= value[f];
        if (g.kind == netlist::GateKind::kNor) v = ~v;
        break;
      case netlist::GateKind::kXor:
      case netlist::GateKind::kXnor:
        v = 0;
        for (const netlist::GateId f : g.fanins) v ^= value[f];
        if (g.kind == netlist::GateKind::kXnor) v = ~v;
        break;
      case netlist::GateKind::kInput:
        IDDQ_ASSERT(false);
        break;
    }
    value[id] = v;
  }
  return value;
}

std::vector<bool> LogicSim::run_single(const std::vector<bool>& inputs) const {
  std::vector<PatternWord> words(inputs.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    words[i] = inputs[i] ? 1u : 0u;
  const auto values = run(words);
  std::vector<bool> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = (values[i] & 1u) != 0;
  return out;
}

}  // namespace iddq::sim
