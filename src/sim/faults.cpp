#include "sim/faults.hpp"

#include "netlist/graph.hpp"
#include "support/error.hpp"

namespace iddq::sim {

FaultList random_faults(const netlist::Netlist& nl, std::size_t bridge_count,
                        std::size_t short_count, Rng& rng) {
  FaultList out;
  const auto logic = nl.logic_gates();
  require(!logic.empty(), "random_faults: circuit has no logic gates");
  const netlist::UndirectedGraph graph(nl);

  // Bridges: half between graph neighbours-of-neighbours (layout-local),
  // half between arbitrary pairs.
  std::size_t guard = 0;
  while (out.bridges.size() < bridge_count && guard < bridge_count * 64) {
    ++guard;
    const netlist::GateId a = logic[rng.index(logic.size())];
    netlist::GateId b = netlist::kNoGate;
    if (rng.chance(0.5)) {
      // Pick a vertex within two hops (a "neighbouring wire").
      const auto n1 = graph.neighbors(a);
      if (n1.empty()) continue;
      const netlist::GateId mid = n1[rng.index(n1.size())];
      const auto n2 = graph.neighbors(mid);
      if (n2.empty()) continue;
      b = n2[rng.index(n2.size())];
    } else {
      b = logic[rng.index(logic.size())];
    }
    if (b == a || b == netlist::kNoGate) continue;
    if (!netlist::is_logic(nl.gate(b).kind)) continue;
    Bridge f;
    f.a = a;
    f.b = b;
    f.r_bridge_kohm = rng.uniform(0.5, 20.0);
    out.bridges.push_back(f);
  }

  for (std::size_t i = 0; i < short_count; ++i) {
    const netlist::GateId g = logic[rng.index(logic.size())];
    GateOxideShort f;
    f.gate = g;
    f.pin = static_cast<std::uint32_t>(rng.index(nl.gate(g).fanins.size()));
    f.r_short_kohm = rng.uniform(1.0, 50.0);
    out.shorts.push_back(f);
  }
  return out;
}

double bridge_current_ua(const Bridge& f, double vdd_mv, double rg_up_kohm,
                         double rg_down_kohm) {
  require(vdd_mv > 0.0, "bridge current: vdd must be positive");
  const double r_total = f.r_bridge_kohm + rg_up_kohm + rg_down_kohm;
  IDDQ_ASSERT(r_total > 0.0);
  return vdd_mv / r_total;
}

double short_current_ua(const GateOxideShort& f, double vdd_mv,
                        double rdrv_kohm) {
  require(vdd_mv > 0.0, "short current: vdd must be positive");
  const double r_total = f.r_short_kohm + rdrv_kohm;
  IDDQ_ASSERT(r_total > 0.0);
  return vdd_mv / r_total;
}

}  // namespace iddq::sim
