#include "sim/faults.hpp"

#include <algorithm>
#include <bit>
#include <set>
#include <tuple>

#include "netlist/graph.hpp"
#include "support/error.hpp"

namespace iddq::sim {

FaultList random_faults(const netlist::Netlist& nl, std::size_t bridge_count,
                        std::size_t short_count, Rng& rng) {
  FaultList out;
  const auto logic = nl.logic_gates();
  require(!logic.empty(), "random_faults: circuit has no logic gates");
  const netlist::UndirectedGraph graph(nl);

  // Bridges: half between graph neighbours-of-neighbours (layout-local),
  // half between arbitrary pairs.
  std::size_t guard = 0;
  while (out.bridges.size() < bridge_count && guard < bridge_count * 64) {
    ++guard;
    const netlist::GateId a = logic[rng.index(logic.size())];
    netlist::GateId b = netlist::kNoGate;
    if (rng.chance(0.5)) {
      // Pick a vertex within two hops (a "neighbouring wire").
      const auto n1 = graph.neighbors(a);
      if (n1.empty()) continue;
      const netlist::GateId mid = n1[rng.index(n1.size())];
      const auto n2 = graph.neighbors(mid);
      if (n2.empty()) continue;
      b = n2[rng.index(n2.size())];
    } else {
      b = logic[rng.index(logic.size())];
    }
    if (b == a || b == netlist::kNoGate) continue;
    if (!netlist::is_logic(nl.gate(b).kind)) continue;
    Bridge f;
    f.a = a;
    f.b = b;
    f.r_bridge_kohm = rng.uniform(0.5, 20.0);
    out.bridges.push_back(f);
  }

  for (std::size_t i = 0; i < short_count; ++i) {
    const netlist::GateId g = logic[rng.index(logic.size())];
    GateOxideShort f;
    f.gate = g;
    f.pin = static_cast<std::uint32_t>(rng.index(nl.gate(g).fanins.size()));
    f.r_short_kohm = rng.uniform(1.0, 50.0);
    out.shorts.push_back(f);
  }
  return out;
}

FaultList collapse_faults(const FaultList& faults,
                          FaultCollapseStats* stats) {
  FaultCollapseStats local;
  FaultList out;
  out.bridges.reserve(faults.bridges.size());
  out.shorts.reserve(faults.shorts.size());

  // Resistances are compared bit-exactly: two bridges on the same pair with
  // different R draw different currents and may well be distinguishable.
  using BridgeKey = std::tuple<netlist::GateId, netlist::GateId,
                               std::uint64_t>;
  std::set<BridgeKey> seen_bridges;
  for (const Bridge& f : faults.bridges) {
    if (f.a == f.b) {
      ++local.dropped_bridges;  // degenerate: a net never differs from itself
      continue;
    }
    Bridge normalized = f;
    if (normalized.b < normalized.a) std::swap(normalized.a, normalized.b);
    const BridgeKey key{normalized.a, normalized.b,
                        std::bit_cast<std::uint64_t>(
                            normalized.r_bridge_kohm)};
    if (!seen_bridges.insert(key).second) {
      ++local.dropped_bridges;
      continue;
    }
    out.bridges.push_back(normalized);
  }

  using ShortKey = std::tuple<netlist::GateId, std::uint32_t, std::uint64_t>;
  std::set<ShortKey> seen_shorts;
  for (const GateOxideShort& f : faults.shorts) {
    const ShortKey key{f.gate, f.pin,
                       std::bit_cast<std::uint64_t>(f.r_short_kohm)};
    if (!seen_shorts.insert(key).second) {
      ++local.dropped_shorts;
      continue;
    }
    out.shorts.push_back(f);
  }

  if (stats != nullptr) *stats = local;
  return out;
}

double bridge_current_ua(const Bridge& f, double vdd_mv, double rg_up_kohm,
                         double rg_down_kohm) {
  require(vdd_mv > 0.0, "bridge current: vdd must be positive");
  const double r_total = f.r_bridge_kohm + rg_up_kohm + rg_down_kohm;
  IDDQ_ASSERT(r_total > 0.0);
  return vdd_mv / r_total;
}

double short_current_ua(const GateOxideShort& f, double vdd_mv,
                        double rdrv_kohm) {
  require(vdd_mv > 0.0, "short current: vdd must be positive");
  const double r_total = f.r_short_kohm + rdrv_kohm;
  IDDQ_ASSERT(r_total > 0.0);
  return vdd_mv / r_total;
}

}  // namespace iddq::sim
