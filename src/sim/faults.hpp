// IDDQ defect models.
//
// The defect classes that motivate IDDQ testing (paper section 1, refs
// [1-6]): bridging defects between two signal nets and gate-oxide shorts.
// Both are invisible to logic testing in many activation states but pull a
// steady current from VDD to GND whenever activated — exactly what a BIC
// sensor observes.
//
//  * Bridge(a, b, R): when gates a and b drive opposite values, a current
//    VDD / (R + Rg_up + Rg_down) flows from the '1' driver's pull-up through
//    the bridge into the '0' driver's pull-down. The *ground-side* sensor —
//    the sensor of the module containing the gate driving 0 — sees it.
//  * GateOxideShort(g, pin, R): a short from the gate oxide of input `pin`
//    of gate g to the channel; draws VDD / (R + Rdrv) whenever the driving
//    signal is 1. Seen by the sensor of the *driving* gate's module (the
//    current enters the ground network through the defect path).
#pragma once

#include <cstdint>
#include <vector>

#include "library/cell.hpp"
#include "netlist/netlist.hpp"
#include "support/rng.hpp"

namespace iddq::sim {

struct Bridge {
  netlist::GateId a = netlist::kNoGate;
  netlist::GateId b = netlist::kNoGate;
  double r_bridge_kohm = 5.0;
};

struct GateOxideShort {
  netlist::GateId gate = netlist::kNoGate;  // defective gate
  std::uint32_t pin = 0;                    // which input pin
  double r_short_kohm = 10.0;
};

struct FaultList {
  std::vector<Bridge> bridges;
  std::vector<GateOxideShort> shorts;

  [[nodiscard]] std::size_t size() const noexcept {
    return bridges.size() + shorts.size();
  }
};

/// Samples `bridge_count` random bridges (biased toward topologically close
/// net pairs, as real layout bridges are) and `short_count` random gate-oxide
/// shorts. Deterministic for a given rng state.
[[nodiscard]] FaultList random_faults(const netlist::Netlist& nl,
                                      std::size_t bridge_count,
                                      std::size_t short_count, Rng& rng);

/// What collapse_faults removed.
struct FaultCollapseStats {
  std::size_t dropped_bridges = 0;  // self-bridges and exact duplicates
  std::size_t dropped_shorts = 0;   // exact duplicates
};

/// Fault collapsing: merges faults no test can distinguish. A bridge is
/// symmetric in its endpoints, so (a,b,R) is normalized to a <= b and
/// duplicates (same pair, same resistance) are dropped, as are
/// degenerate self-bridges (a == b, never activated). Shorts collapse on
/// identical (gate, pin, resistance). First-occurrence order is preserved,
/// so the collapsed list is deterministic for a deterministic input.
[[nodiscard]] FaultList collapse_faults(const FaultList& faults,
                                        FaultCollapseStats* stats = nullptr);

/// Defect current of an activated bridge, in uA.
[[nodiscard]] double bridge_current_ua(const Bridge& f, double vdd_mv,
                                       double rg_up_kohm,
                                       double rg_down_kohm);

/// Defect current of an activated gate-oxide short, in uA.
[[nodiscard]] double short_current_ua(const GateOxideShort& f, double vdd_mv,
                                      double rdrv_kohm);

}  // namespace iddq::sim
