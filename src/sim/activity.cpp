#include "sim/activity.hpp"

#include <algorithm>

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::sim {

ActivityAnalyzer::ActivityAnalyzer(const netlist::Netlist& nl,
                                   const est::TransitionTimes& tt,
                                   std::span<const lib::CellParams> cells)
    : nl_(&nl), tt_(&tt), cells_(cells), sim_(nl),
      depth_(netlist::levelize(nl).depth) {
  require(cells.size() == nl.gate_count(),
          "activity: cells must be bound to the netlist");
}

ActivityResult ActivityAnalyzer::measure(
    std::span<const PatternBatch> patterns,
    std::span<const std::uint32_t> module_of,
    std::size_t module_count) const {
  require(module_of.size() == nl_->gate_count(),
          "activity: module_of must cover all gates");
  ActivityResult out;
  out.peak_current_ua.assign(module_count, 0.0);
  out.peak_switching.assign(module_count, 0);

  const std::size_t grid = tt_->grid_size();
  std::vector<double> current(module_count * grid);
  std::vector<std::uint32_t> switching(module_count * grid);

  for (const auto& batch : patterns) {
    if (batch.pattern_count < 2) continue;
    const auto values = sim_.run(batch.words);
    for (std::size_t lane = 0; lane + 1 < batch.pattern_count; ++lane) {
      std::fill(current.begin(), current.end(), 0.0);
      std::fill(switching.begin(), switching.end(), 0);
      for (const netlist::GateId g : nl_->logic_gates()) {
        const std::uint32_t m = module_of[g];
        if (m == static_cast<std::uint32_t>(-1)) continue;
        const bool v0 = (values[g] >> lane) & 1u;
        const bool v1 = (values[g] >> (lane + 1)) & 1u;
        if (v0 == v1) continue;  // gate does not toggle for this pair
        const std::size_t t = depth_[g];
        current[m * grid + t] += cells_[g].ipeak_ua;
        switching[m * grid + t] += 1;
      }
      for (std::size_t m = 0; m < module_count; ++m) {
        for (std::size_t t = 0; t < grid; ++t) {
          out.peak_current_ua[m] =
              std::max(out.peak_current_ua[m], current[m * grid + t]);
          out.peak_switching[m] =
              std::max(out.peak_switching[m], switching[m * grid + t]);
        }
      }
    }
  }
  return out;
}

}  // namespace iddq::sim
