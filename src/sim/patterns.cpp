#include "sim/patterns.hpp"

#include "support/error.hpp"

namespace iddq::sim {

std::vector<PatternBatch> random_patterns(const netlist::Netlist& nl,
                                          std::size_t count, Rng& rng) {
  require(count >= 1, "random_patterns: need at least one pattern");
  std::vector<PatternBatch> out;
  std::size_t remaining = count;
  while (remaining > 0) {
    const std::size_t lanes = remaining >= 64 ? 64 : remaining;
    PatternBatch batch;
    batch.pattern_count = lanes;
    batch.words.resize(nl.primary_inputs().size());
    for (auto& w : batch.words) {
      w = rng();
      if (lanes < 64) w &= (PatternWord{1} << lanes) - 1;
    }
    out.push_back(std::move(batch));
    remaining -= lanes;
  }
  return out;
}

std::vector<PatternBatch> exhaustive_patterns(const netlist::Netlist& nl,
                                              std::size_t max_inputs) {
  const std::size_t n = nl.primary_inputs().size();
  require(n <= max_inputs && n < 63,
          "exhaustive_patterns: too many primary inputs");
  const std::size_t total = std::size_t{1} << n;
  std::vector<PatternBatch> out;
  for (std::size_t base = 0; base < total; base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, total - base);
    PatternBatch batch;
    batch.pattern_count = lanes;
    batch.words.assign(n, 0);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const std::size_t pattern = base + lane;
      for (std::size_t i = 0; i < n; ++i) {
        if ((pattern >> i) & 1u)
          batch.words[i] |= PatternWord{1} << lane;
      }
    }
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace iddq::sim
