#include "sim/coverage.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <utility>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/units.hpp"

namespace iddq::sim {

namespace {

constexpr std::uint32_t kNoModule = part::kUnassigned;

std::size_t clamp_count(std::size_t v, std::size_t lo, std::size_t hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

FaultModelSpec FaultModelSpec::parse(std::string_view spec) {
  const std::string s = str::to_lower(str::trim(spec));
  FaultModelSpec out;
  if (s == "mixed") {
    out.kind = Kind::kMixed;
    return out;
  }
  if (s == "bridges") {
    out.kind = Kind::kBridges;
    return out;
  }
  if (s == "shorts") {
    out.kind = Kind::kShorts;
    return out;
  }
  // Explicit counts: "bridges=N[,shorts=M]" in either order.
  out.kind = Kind::kExplicit;
  bool saw_bridges = false;
  bool saw_shorts = false;
  for (const auto piece : str::split(s, ',')) {
    const auto kv = str::split(piece, '=');
    if (kv.size() != 2)
      throw Error("fault model: expected name=count, got '" +
                  std::string(piece) + "'");
    std::size_t count = 0;
    if (!str::parse_size(kv[1], count))
      throw Error("fault model: bad count '" + std::string(kv[1]) + "'");
    if (kv[0] == "bridges" && !saw_bridges) {
      out.bridges = count;
      saw_bridges = true;
    } else if (kv[0] == "shorts" && !saw_shorts) {
      out.shorts = count;
      saw_shorts = true;
    } else {
      throw Error("fault model: unknown or repeated term '" +
                  std::string(kv[0]) +
                  "' (grammar: mixed | bridges | shorts | "
                  "bridges=N[,shorts=M])");
    }
  }
  if (!saw_bridges && !saw_shorts)
    throw Error("fault model: empty spec (grammar: mixed | bridges | "
                "shorts | bridges=N[,shorts=M])");
  if (out.bridges == 0 && out.shorts == 0)
    throw Error("fault model: at least one fault count must be > 0");
  return out;
}

std::string FaultModelSpec::canonical() const {
  switch (kind) {
    case Kind::kMixed: return "mixed";
    case Kind::kBridges: return "bridges";
    case Kind::kShorts: return "shorts";
    case Kind::kExplicit:
      return "bridges=" + std::to_string(bridges) +
             ",shorts=" + std::to_string(shorts);
  }
  return "mixed";
}

std::size_t FaultModelSpec::bridge_count(std::size_t logic_gates) const {
  switch (kind) {
    case Kind::kMixed: return clamp_count(logic_gates, 8, 512);
    case Kind::kBridges: return clamp_count(2 * logic_gates, 16, 1024);
    case Kind::kShorts: return 0;
    case Kind::kExplicit: return bridges;
  }
  return 0;
}

std::size_t FaultModelSpec::short_count(std::size_t logic_gates) const {
  switch (kind) {
    case Kind::kMixed: return clamp_count(logic_gates, 8, 512);
    case Kind::kBridges: return 0;
    case Kind::kShorts: return clamp_count(2 * logic_gates, 16, 1024);
    case Kind::kExplicit: return shorts;
  }
  return 0;
}

double coverage_percent(std::size_t detected, std::size_t total) {
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(detected) /
                          static_cast<double>(total);
}

CoverageEngine::CoverageEngine(const netlist::Netlist& nl,
                               const lib::CellLibrary& library,
                               CoverageConfig config)
    : nl_(&nl),
      config_(std::move(config)),
      cells_(lib::bind_cells(nl, library)) {
  Rng pattern_rng(Rng::mix_seed(config_.seed, 2));
  require(config_.patterns > 0, "coverage: pattern count must be >= 1");
  patterns_ = random_patterns(nl, config_.patterns, pattern_rng);
  precompute();
}

CoverageEngine::CoverageEngine(const netlist::Netlist& nl,
                               const lib::CellLibrary& library,
                               CoverageConfig config,
                               std::vector<PatternBatch> patterns)
    : nl_(&nl),
      config_(std::move(config)),
      cells_(lib::bind_cells(nl, library)),
      patterns_(std::move(patterns)) {
  require(!patterns_.empty(), "coverage: pattern suite is empty");
  precompute();
}

void CoverageEngine::precompute() {
  require(config_.sim.iddq_th_ua > 0.0,
          "coverage: IDDQ threshold must be positive");
  const std::size_t logic = nl_->logic_gates().size();
  Rng fault_rng(Rng::mix_seed(config_.seed, 1));
  faults_ = collapse_faults(
      random_faults(*nl_, config_.fault_model.bridge_count(logic),
                    config_.fault_model.short_count(logic), fault_rng));

  pattern_count_ = 0;
  for (const auto& batch : patterns_) pattern_count_ += batch.pattern_count;

  // The expensive part, done exactly once: the studied defects draw static
  // current without flipping logic values, so the good-machine values serve
  // every fault and every partition.
  const LogicSim sim(*nl_);
  values_.reserve(patterns_.size());
  for (const auto& batch : patterns_) values_.push_back(sim.run(batch.words));

  bridge_sites_.reserve(faults_.bridges.size());
  for (const auto& f : faults_.bridges) {
    BridgeSite site;
    site.i_defect_ua = bridge_current_ua(f, config_.sim.vdd_mv,
                                         cells_[f.a].rg_kohm,
                                         cells_[f.b].rg_kohm);
    bridge_sites_.push_back(site);
  }
  short_sites_.reserve(faults_.shorts.size());
  for (const auto& f : faults_.shorts) {
    ShortSite site;
    site.driver = nl_->gate(f.gate).fanins[f.pin];
    // Same attribution rule as IddqSimulator::detects_short: a PI driver
    // has no sensor, so the defective gate's module senses the current.
    const bool driver_is_logic = netlist::is_logic(nl_->gate(site.driver).kind);
    site.sensed = driver_is_logic ? site.driver : f.gate;
    const double rdrv = driver_is_logic ? cells_[site.driver].rg_kohm : 1.0;
    site.i_defect_ua = short_current_ua(f, config_.sim.vdd_mv, rdrv);
    short_sites_.push_back(site);
  }
}

CoverageReport CoverageEngine::score(const part::Partition& p,
                                     support::ExecutorPool* pool) const {
  // Fault-free per-module leakage, accumulated in module/gate order (the
  // same order as IddqSimulator::fault_free_module_current).
  std::vector<double> leak(p.module_count(), 0.0);
  for (std::uint32_t m = 0; m < p.module_count(); ++m)
    for (const netlist::GateId g : p.module(m))
      leak[m] += units::na_to_ua(cells_[g].ileak_na);
  const double th = config_.sim.iddq_th_ua;
  // A sensor only informs when its fault-free current itself passes; the
  // defect current must then push it over the threshold (section-1
  // discriminability).
  const auto discriminates = [&](std::uint32_t m, double i_defect) {
    return m != kNoModule && leak[m] <= th && leak[m] + i_defect > th;
  };

  const std::size_t batches = patterns_.size();
  const std::size_t bridge_n = faults_.bridges.size();
  const std::size_t total = faults_.size();

  // Per-fault slot: which lanes of each batch detect the fault (through any
  // sensor), plus the candidate sensor modules for the per-module stats.
  struct Slot {
    std::vector<PatternWord> words;
    std::array<std::uint32_t, 2> sensors{kNoModule, kNoModule};
    std::array<bool, 2> fired{false, false};
  };
  std::vector<Slot> slots(total);

  // Fault-parallel stage: each body touches only its own pre-indexed slot
  // and reads shared immutable state, so the result is scheduling-
  // independent; the reduction below runs on the caller in fault order.
  support::parallel_for_indexed(pool, total, [&](std::size_t f) {
    Slot& slot = slots[f];
    slot.words.assign(batches, 0);
    if (f < bridge_n) {
      const Bridge& br = faults_.bridges[f];
      const std::uint32_t ma = p.module_of(br.a);
      const std::uint32_t mb = p.module_of(br.b);
      slot.sensors[0] = ma;
      slot.sensors[1] = (mb == ma) ? kNoModule : mb;
      const double i_defect = bridge_sites_[f].i_defect_ua;
      const bool a_ok = discriminates(ma, i_defect);
      const bool b_ok = discriminates(mb, i_defect);
      if (!a_ok && !b_ok) return;
      for (std::size_t b = 0; b < batches; ++b) {
        const auto& values = values_[b];
        PatternWord active = values[br.a] ^ values[br.b];
        if (patterns_[b].pattern_count < 64)
          active &= (PatternWord{1} << patterns_[b].pattern_count) - 1;
        if (active == 0) continue;
        // The ground-side sensor (module of the gate driving 0) sees the
        // bridge current; which side drives 0 depends on the lane.
        PatternWord hit = 0;
        if (a_ok) {
          const PatternWord w = active & ~values[br.a];
          if (w != 0) slot.fired[0] = true;
          hit |= w;
        }
        if (b_ok) {
          const PatternWord w = active & ~values[br.b];
          if (w != 0) slot.fired[slot.sensors[1] == kNoModule ? 0 : 1] = true;
          hit |= w;
        }
        slot.words[b] = hit;
      }
    } else {
      const std::size_t s = f - bridge_n;
      const ShortSite& site = short_sites_[s];
      const std::uint32_t m = p.module_of(site.sensed);
      slot.sensors[0] = m;
      if (!discriminates(m, site.i_defect_ua)) return;
      for (std::size_t b = 0; b < batches; ++b) {
        PatternWord active = values_[b][site.driver];  // conducts on 1
        if (patterns_[b].pattern_count < 64)
          active &= (PatternWord{1} << patterns_[b].pattern_count) - 1;
        if (active != 0) slot.fired[0] = true;
        slot.words[b] = active;
      }
    }
  });

  CoverageReport report;
  report.faults_total = total;
  report.patterns_supplied = pattern_count_;
  report.patterns_minimized = pattern_count_;
  report.detected.assign(total, false);
  report.modules.assign(p.module_count(), ModuleCoverage{});
  for (std::size_t f = 0; f < total; ++f) {
    const Slot& slot = slots[f];
    bool any = false;
    for (const PatternWord w : slot.words) any = any || w != 0;
    report.detected[f] = any;
    if (any) ++report.faults_detected;
    for (std::size_t side = 0; side < 2; ++side) {
      const std::uint32_t m = slot.sensors[side];
      if (m == kNoModule) continue;
      ++report.modules[m].observable;
      if (slot.fired[side]) ++report.modules[m].detected;
    }
  }

  if (!config_.minimize) return report;

  // Greedy set cover (the classic test-compaction heuristic): keep the
  // pattern covering the most still-uncovered detected faults; lowest
  // pattern index on ties. By construction the selected suite detects
  // exactly the detected fault set, so coverage can never drop.
  std::vector<bool> covered(total, false);
  std::size_t uncovered = report.faults_detected;
  std::vector<std::size_t> counts(pattern_count_, 0);
  while (uncovered > 0) {
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t f = 0; f < total; ++f) {
      if (covered[f] || !report.detected[f]) continue;
      for (std::size_t b = 0; b < slots[f].words.size(); ++b) {
        PatternWord w = slots[f].words[b];
        while (w != 0) {
          const int lane = std::countr_zero(w);
          counts[b * 64 + static_cast<std::size_t>(lane)] += 1;
          w &= w - 1;
        }
      }
    }
    std::size_t best = 0;
    std::size_t best_count = 0;
    for (std::size_t pat = 0; pat < pattern_count_; ++pat) {
      if (counts[pat] > best_count) {
        best_count = counts[pat];
        best = pat;
      }
    }
    IDDQ_ASSERT(best_count > 0);
    report.selected_patterns.push_back(static_cast<std::uint32_t>(best));
    const std::size_t bb = best / 64;
    const PatternWord bit = PatternWord{1} << (best % 64);
    for (std::size_t f = 0; f < total; ++f) {
      if (covered[f] || !report.detected[f]) continue;
      if ((slots[f].words[bb] & bit) != 0) {
        covered[f] = true;
        --uncovered;
      }
    }
  }
  report.patterns_minimized = report.selected_patterns.size();
  return report;
}

}  // namespace iddq::sim
