// 64-way bit-parallel levelized logic simulator.
//
// Simulates 64 input patterns per pass (one per bit lane). Used to
// (a) functionally verify the generated circuits (e.g. the array multiplier
//     actually multiplies),
// (b) drive the IDDQ defect simulation (quiescent state per vector), and
// (c) measure real simultaneous-switching activity to validate the
//     pessimistic max-current estimator (ablation bench).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace iddq::sim {

/// One 64-lane pattern word per primary input.
using PatternWord = std::uint64_t;

class LogicSim {
 public:
  explicit LogicSim(const netlist::Netlist& nl);

  /// Evaluates the circuit for up to 64 patterns at once. `input_words[i]`
  /// carries the values of primary input i across the 64 lanes. Returns the
  /// value words for *all* gates, indexed by GateId.
  [[nodiscard]] std::vector<PatternWord> run(
      std::span<const PatternWord> input_words) const;

  /// Convenience single-pattern evaluation (lane 0 of run()); the result is
  /// indexed by GateId. (vector<bool> because the packed specialisation
  /// cannot bind to std::span.)
  [[nodiscard]] std::vector<bool> run_single(
      const std::vector<bool>& inputs) const;

 private:
  const netlist::Netlist* nl_;
  std::vector<netlist::GateId> order_;
};

}  // namespace iddq::sim
