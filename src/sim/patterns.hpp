// Test-pattern generation for the IDDQ test simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/logic_sim.hpp"
#include "support/rng.hpp"

namespace iddq::sim {

/// A batch of up to 64 patterns, one word per primary input.
struct PatternBatch {
  std::vector<PatternWord> words;  // indexed like primary_inputs()
  std::size_t pattern_count = 0;   // lanes in use (1..64)
};

/// `count` uniformly random patterns packed into ceil(count/64) batches.
[[nodiscard]] std::vector<PatternBatch> random_patterns(
    const netlist::Netlist& nl, std::size_t count, Rng& rng);

/// An exhaustive pattern set (only for small input counts; throws when
/// the circuit has more than `max_inputs` primary inputs, default 16).
[[nodiscard]] std::vector<PatternBatch> exhaustive_patterns(
    const netlist::Netlist& nl, std::size_t max_inputs = 16);

}  // namespace iddq::sim
