// Fault-grade coverage engine: measured per-partition IDDQ fault coverage.
//
// The proxies the optimizers minimize (sensor area, delay, test overhead)
// say nothing about what a partition actually *buys*: observability of the
// defect classes that motivate IDDQ testing in the first place (paper
// section 1). CoverageEngine closes that loop. Given a circuit and a fault
// model (bridging defects + gate-oxide shorts from sim/faults), it samples
// a fault list, generates (or accepts) a pattern suite, simulates the
// fault-free circuit ONCE per pattern batch — these defects draw static
// current but do not flip logic values, so the good-machine simulation is
// partition- and fault-independent — and then scores any partition by
// replaying the per-module sensor decision of iddq_sim over the
// precomputed values: a fault counts as detected when some pattern makes
// some module sensor exceed IDDQ_th while that sensor's fault-free leakage
// still passes (the section-1 discriminability condition).
//
// Determinism contract (the repo-wide recipe): the constructor samples
// faults and patterns from explicit seeds; score() fans the per-fault
// detection work out over an ExecutorPool with each fault writing only its
// own pre-indexed slot, and reduces the slots on the caller in fault-list
// order. Reports are byte-identical at any thread count.
//
// The optional greedy set-cover pass (the classic test-compaction
// heuristic: repeatedly keep the pattern detecting the most not-yet-
// covered faults, lowest pattern index on ties) selects a minimized suite
// that detects exactly the same fault set — coverage can never drop, only
// the pattern count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "library/cell_library.hpp"
#include "netlist/netlist.hpp"
#include "partition/partition.hpp"
#include "sim/faults.hpp"
#include "sim/iddq_sim.hpp"
#include "sim/logic_sim.hpp"
#include "sim/patterns.hpp"
#include "support/executor.hpp"

namespace iddq::sim {

/// Parsed `--fault-model` spec. Grammar:
///   "mixed" | "bridges" | "shorts"            named presets, counts scale
///                                             with the circuit size
///   "bridges=N[,shorts=M]" | "shorts=M[,bridges=N]"
///                                             explicit counts (missing = 0,
///                                             both zero rejected)
struct FaultModelSpec {
  enum class Kind { kMixed, kBridges, kShorts, kExplicit };

  Kind kind = Kind::kMixed;
  std::size_t bridges = 0;  // explicit counts; meaningful for kExplicit only
  std::size_t shorts = 0;

  /// Throws iddq::Error on a malformed spec.
  [[nodiscard]] static FaultModelSpec parse(std::string_view spec);

  /// Normalized spelling (what cache fingerprints hash): presets by name,
  /// explicit counts always as "bridges=N,shorts=M".
  [[nodiscard]] std::string canonical() const;

  /// Fault counts to sample for a circuit with `logic_gates` logic gates.
  [[nodiscard]] std::size_t bridge_count(std::size_t logic_gates) const;
  [[nodiscard]] std::size_t short_count(std::size_t logic_gates) const;
};

struct CoverageConfig {
  FaultModelSpec fault_model;
  std::size_t patterns = 256;  // random patterns to generate
  bool minimize = false;       // run the greedy set-cover pass
  std::uint64_t seed = 1;      // fault + pattern sampling seed
  IddqSimConfig sim;           // vdd and the sensor threshold IDDQ_th
};

/// Per-module slice of a CoverageReport. `observable` counts the faults
/// whose defect current would enter this module's virtual ground network
/// under some activation (bridges are counted for both end modules — either
/// side may drive 0); `detected` counts those this module's sensor actually
/// caught under the pattern suite, so detected <= observable.
struct ModuleCoverage {
  std::size_t observable = 0;
  std::size_t detected = 0;
};

/// detected/total as a percentage; 0 for an empty fault list. The one
/// definition shared by fresh scoring and cache replay, so both paths
/// produce bit-identical doubles.
[[nodiscard]] double coverage_percent(std::size_t detected,
                                      std::size_t total);

struct CoverageReport {
  std::size_t faults_total = 0;
  std::size_t faults_detected = 0;
  std::size_t patterns_supplied = 0;
  /// Greedy set-cover suite size; == patterns_supplied when minimization
  /// is off (the suite is the suite).
  std::size_t patterns_minimized = 0;
  /// Selected pattern indices (global: batch * 64 + lane) in greedy
  /// selection order — marginal value first. Empty when minimization is
  /// off.
  std::vector<std::uint32_t> selected_patterns;
  /// Per-fault verdicts, indexed like the engine's FaultList: bridges
  /// first, then shorts. The undetected list is the complement.
  std::vector<bool> detected;
  std::vector<ModuleCoverage> modules;  // indexed by partition module

  [[nodiscard]] double coverage_pct() const {
    return coverage_percent(faults_detected, faults_total);
  }
};

class CoverageEngine {
 public:
  /// Samples the fault list (collapsed: equivalent faults merged) and the
  /// pattern suite from `config.seed`, and runs the fault-free logic
  /// simulation for every batch. `nl` and `library` must outlive the
  /// engine.
  CoverageEngine(const netlist::Netlist& nl, const lib::CellLibrary& library,
                 CoverageConfig config);

  /// Same, but with an externally supplied pattern suite (e.g. a
  /// functional test set) instead of generated random patterns.
  CoverageEngine(const netlist::Netlist& nl, const lib::CellLibrary& library,
                 CoverageConfig config, std::vector<PatternBatch> patterns);

  [[nodiscard]] const FaultList& faults() const noexcept { return faults_; }
  [[nodiscard]] std::size_t pattern_count() const noexcept {
    return pattern_count_;
  }
  [[nodiscard]] const CoverageConfig& config() const noexcept {
    return config_;
  }

  /// Scores one partition: fault-parallel over `pool` (nullptr = serial),
  /// byte-identical for any pool size.
  [[nodiscard]] CoverageReport score(const part::Partition& p,
                                     support::ExecutorPool* pool = nullptr)
      const;

 private:
  void precompute();

  const netlist::Netlist* nl_;
  CoverageConfig config_;
  std::vector<lib::CellParams> cells_;
  FaultList faults_;
  std::vector<PatternBatch> patterns_;
  std::size_t pattern_count_ = 0;
  /// Fault-free gate values per batch, indexed [batch][GateId]: the
  /// expensive part of scoring, shared by every fault and every partition.
  std::vector<std::vector<PatternWord>> values_;
  /// Per-fault activation data precomputed once (partition-independent).
  struct BridgeSite {
    double i_defect_ua = 0.0;
  };
  struct ShortSite {
    netlist::GateId driver = netlist::kNoGate;  // conducts when driver is 1
    netlist::GateId sensed = netlist::kNoGate;  // gate whose module senses
    double i_defect_ua = 0.0;
  };
  std::vector<BridgeSite> bridge_sites_;
  std::vector<ShortSite> short_sites_;
};

}  // namespace iddq::sim
