// Measured switching activity: validation of the pessimistic estimator.
//
// The paper's max-current estimator assumes every gate switches at every
// possible transition time (section 3.1: "a pessimistic assumption as we do
// not consider paths possibly blocked"). This analyzer measures the *actual*
// peak simultaneous switching current under simulated vector pairs: a gate
// switches when its value differs between two consecutive vectors, once, at
// its levelized depth (the unit-delay arrival of the final transition).
// Comparing the two quantifies the estimator's pessimism
// (bench/ablation_estimator). The measured value is an optimistic floor —
// real CMOS also hazard-switches at intermediate arrivals, which is exactly
// why the paper works with the full set T(g).
#pragma once

#include <span>
#include <vector>

#include "estimators/transition_times.hpp"
#include "library/cell.hpp"
#include "netlist/netlist.hpp"
#include "sim/logic_sim.hpp"
#include "sim/patterns.hpp"

namespace iddq::sim {

struct ActivityResult {
  /// Peak simultaneous switching current over all vector pairs and grid
  /// slots, per module (uA).
  std::vector<double> peak_current_ua;
  /// Peak number of simultaneously switching gates, per module.
  std::vector<std::uint32_t> peak_switching;
};

class ActivityAnalyzer {
 public:
  ActivityAnalyzer(const netlist::Netlist& nl,
                   const est::TransitionTimes& tt,
                   std::span<const lib::CellParams> cells);

  /// Replays consecutive pattern pairs (within each batch: lane i vs lane
  /// i+1) and records the worst-case per-module switching profile.
  /// `module_of` maps GateId to module (part::kUnassigned entries ignored);
  /// `module_count` sizes the result.
  [[nodiscard]] ActivityResult measure(
      std::span<const PatternBatch> patterns,
      std::span<const std::uint32_t> module_of,
      std::size_t module_count) const;

 private:
  const netlist::Netlist* nl_;
  const est::TransitionTimes* tt_;
  std::span<const lib::CellParams> cells_;
  LogicSim sim_;
  std::vector<std::size_t> depth_;
};

}  // namespace iddq::sim
