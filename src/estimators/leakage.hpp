// Quiescent-current (leakage) sums and the discriminability constraint
// (paper section 2):
//
//   d(M_i) = IDDQ_th / IDDQ_nd,i  >=  d        for every module,
//
// where IDDQ_nd,i is the module's maximum non-defective quiescent current —
// the sum of its gates' worst-case leakages from the cell library.
#pragma once

#include <span>

#include "library/cell.hpp"
#include "netlist/netlist.hpp"
#include "support/units.hpp"

namespace iddq::est {

/// Sum of gate leakages over a gate set, in uA.
[[nodiscard]] double module_leakage_ua(std::span<const lib::CellParams> cells,
                                       std::span<const netlist::GateId> gates);

/// Discriminability d(M) = iddq_th / leakage. Infinite leakage-free modules
/// are reported as a very large value rather than infinity.
[[nodiscard]] double discriminability(double iddq_th_ua, double leakage_ua);

}  // namespace iddq::est
