#include "estimators/incremental_timing.hpp"

#include "netlist/levelize.hpp"

namespace iddq::est {

TimingGraph::TimingGraph(const netlist::Netlist& nl,
                         std::span<const lib::CellParams> cells)
    : order_(netlist::topological_order(nl)), rank_(nl.gate_count(), 0) {
  for (std::uint32_t i = 0; i < order_.size(); ++i) rank_[order_[i]] = i;
  const std::size_t n = nl.gate_count();
  fanin_off_.assign(n + 1, 0);
  fanout_off_.assign(n + 1, 0);
  delay_ps_.assign(n, 0.0);
  for (netlist::GateId id = 0; id < n; ++id) {
    const auto& g = nl.gate(id);
    fanin_off_[id + 1] = fanin_off_[id] +
                         static_cast<std::uint32_t>(g.fanins.size());
    fanout_off_[id + 1] = fanout_off_[id] +
                          static_cast<std::uint32_t>(g.fanouts.size());
    delay_ps_[id] = cells.empty() ? 0.0 : cells[id].delay_ps;
  }
  fanin_flat_.reserve(fanin_off_[n]);
  fanout_flat_.reserve(fanout_off_[n]);
  for (netlist::GateId id = 0; id < n; ++id) {
    const auto& g = nl.gate(id);
    fanin_flat_.insert(fanin_flat_.end(), g.fanins.begin(), g.fanins.end());
    fanout_flat_.insert(fanout_flat_.end(), g.fanouts.begin(),
                        g.fanouts.end());
  }
}

void IncrementalTiming::rescan_worst() {
  // Flat scan of the arrival array — no graph walk, vectorizes. Primary
  // inputs hold arrival 0 and cannot spuriously win (delays are positive;
  // if every arrival is 0 the critical path is 0 anyway).
  worst_ = 0.0;
  critical_ = netlist::kNoGate;
  for (netlist::GateId id = 0; id < arrival_.size(); ++id) {
    if (arrival_[id] > worst_) {
      worst_ = arrival_[id];
      critical_ = id;
    }
  }
}

}  // namespace iddq::est
