// Transition-time sets T(g) (paper section 3.1).
//
// The maximum-current estimator needs, for every gate, the set of times at
// which the gate can possibly switch: the arrival times of transitions along
// all input-to-gate paths. Following the paper, delays come from the
// electrical-level cell characterization and arrival times live on a
// discrete time grid ("these delays are time grid functions"):
//
//   T(pi) = {0},   T(g) = union over fanins f of { t + q(D(g)) : t in T(f) }
//
// with q(D) = max(1, round(D / bin)) the quantized cell delay in grid slots.
// Gates are assumed to switch (pessimistically) at *every* time in T(g);
// gates whose arrival sets collide in a slot switch together and their peak
// currents add. Sets are stored as bitsets so the module current profiles
// can be updated in O(grid/64) per gate move.
//
// The unit-delay constructor (every gate one slot, the levelized depth grid)
// is kept for tests and for structural analyses where cell delays are not
// bound yet.
#pragma once

#include <span>
#include <vector>

#include "library/cell.hpp"
#include "netlist/netlist.hpp"
#include "support/bitset.hpp"

namespace iddq::est {

class TransitionTimes {
 public:
  /// Unit-delay grid: every logic gate advances one slot (grid = depth + 1).
  explicit TransitionTimes(const netlist::Netlist& nl);

  /// Electrical-delay grid: gate g advances max(1, round(delay/bin_ps))
  /// slots. `cells` is the bound cell-parameter table (bind_cells).
  TransitionTimes(const netlist::Netlist& nl,
                  std::span<const lib::CellParams> cells, double bin_ps);

  /// Number of grid slots.
  [[nodiscard]] std::size_t grid_size() const noexcept { return grid_; }

  /// Grid bin width in ps (1.0 and meaningless for the unit-delay grid).
  [[nodiscard]] double bin_ps() const noexcept { return bin_ps_; }

  /// The transition-time set of a gate.
  [[nodiscard]] const DynamicBitset& at(netlist::GateId id) const {
    return times_[id];
  }

  /// Number of possible transition times of a gate (|T(g)| = number of
  /// distinct quantized arrival times, not number of paths).
  [[nodiscard]] std::size_t count(netlist::GateId id) const {
    return times_[id].count();
  }

 private:
  void build(const netlist::Netlist& nl,
             std::span<const std::size_t> slot_delay);

  std::size_t grid_ = 0;
  double bin_ps_ = 1.0;
  std::vector<DynamicBitset> times_;
};

}  // namespace iddq::est
