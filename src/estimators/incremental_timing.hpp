// Incremental critical-path timing (the evaluator hot path).
//
// The paper's flow recomputes costs "just for the modified modules"
// (section 4.2), but the delay terms are global: D_BIC is the longest path
// with per-gate degraded delays D(g) * delta(g). A full pass is O(V + E)
// per fitness query — after a single-gate move that perturbs only two
// modules' delta factors, almost all of that work recomputes unchanged
// arrivals.
//
// IncrementalTiming keeps the per-gate arrival state persistent and, given
// the set of gates whose delta factor may have changed, repropagates only
// the affected fanout cone:
//
//   * TimingGraph (immutable, shared per circuit): one topological order
//     and the rank of every gate in it. Built once per EvalContext.
//   * arrival[g] = max over fanins of arrival[fanin] + D(g) * factor(g),
//     exactly the recurrence of est::degraded_critical_path_ps. Each
//     arrival is a pure function of the fanin arrivals and the gate's own
//     factor, computed with the same expression on the same operand values
//     — there is no cross-gate reassociation — so the incremental result
//     is bit-identical to the full pass (pinned by
//     tests/estimators/test_incremental_timing.cpp).
//   * factors are supplied by a callable `double(GateId)` so the caller
//     (the evaluator) can serve them straight from its per-module anchor
//     rows — or from overlay rows for a hypothetical move — without
//     materialising a per-gate array.
//   * the worklist is a flagged sweep of the topological order from the
//     lowest seeded rank: every seeded/affected gate is recomputed at most
//     once, after all of its fanins settled, and propagation stops where a
//     recomputed arrival is unchanged (seeding a gate whose factor did not
//     actually change is allowed and prunes immediately). Unaffected gates
//     cost one flag test, so a sparse cone is nearly free and a dense one
//     degenerates to a plain (heap-free) suffix pass.
//   * the critical value is maintained as (worst, witness gate): increases
//     update it in O(1); only a decrease *of the witness itself* forces an
//     O(V) flat rescan of the arrival array (no graph walk).
//
// probe() evaluates a hypothetical factor change — same worklist, journaled
// writes — and rolls the state back before returning, which is what makes
// the evaluator's copy-free probe_move() possible.
//
// Copying an IncrementalTiming (an evolution-strategy child duplicating
// its parent, a tabu slice copying the round-start evaluator) deliberately
// DROPS the arrival state: the copy reports !valid() and the next rebuild
// recomputes it from the copied module caches — bit-identical by the
// fixpoint argument above, and the O(V) arrival memcpy per copy is gone
// from the population hot path.
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "library/cell.hpp"
#include "netlist/netlist.hpp"
#include "support/error.hpp"

namespace iddq::est {

/// Immutable per-circuit ordering shared by every IncrementalTiming (and
/// every copy of every evaluator) over the same netlist. Adjacency and the
/// nominal cell delays are flattened into CSR arrays so the inner timing
/// loops touch contiguous memory instead of per-gate vectors (same
/// neighbour values in the same order — the arithmetic is unchanged).
class TimingGraph {
 public:
  TimingGraph(const netlist::Netlist& nl,
              std::span<const lib::CellParams> cells);

  [[nodiscard]] std::size_t gate_count() const noexcept {
    return rank_.size();
  }
  [[nodiscard]] std::span<const netlist::GateId> order() const noexcept {
    return order_;
  }
  /// Position of a gate in order() (fanins always rank lower).
  [[nodiscard]] std::uint32_t rank(netlist::GateId g) const {
    return rank_[g];
  }
  [[nodiscard]] std::span<const netlist::GateId> fanins(
      netlist::GateId g) const {
    return {fanin_flat_.data() + fanin_off_[g],
            fanin_off_[g + 1] - fanin_off_[g]};
  }
  [[nodiscard]] std::span<const netlist::GateId> fanouts(
      netlist::GateId g) const {
    return {fanout_flat_.data() + fanout_off_[g],
            fanout_off_[g + 1] - fanout_off_[g]};
  }
  /// Nominal cell delay D(g), in ps.
  [[nodiscard]] double delay_ps(netlist::GateId g) const {
    return delay_ps_[g];
  }

 private:
  std::vector<netlist::GateId> order_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> fanin_off_;   // size gate_count + 1
  std::vector<netlist::GateId> fanin_flat_;
  std::vector<std::uint32_t> fanout_off_;  // size gate_count + 1
  std::vector<netlist::GateId> fanout_flat_;
  std::vector<double> delay_ps_;
};

class IncrementalTiming {
 public:
  /// Seed sets at or above gate_count / kDenseSeedFactor are considered
  /// dense and take the plain full pass instead of the flagged sweep.
  /// The fanout-cone amplification on the deep Table-1 circuits makes the
  /// sweep cost more than a full pass already at ~1-2% seed density
  /// (module-pair seed sets reach two thirds of the circuit), so the
  /// cutover is deliberately aggressive; results are bit-identical either
  /// way, only the constant changes. Single-gate and few-gate seeds — the
  /// fine-grained regime the sweep targets — stay two orders of magnitude
  /// under a full pass (bench/perf_micro.cpp, BM_IncrementalVsFullTiming).
  static constexpr std::size_t kDenseSeedFactor = 64;

  /// `graph` must outlive the instance (it lives in the EvalContext;
  /// evaluator copies share it).
  explicit IncrementalTiming(const TimingGraph& graph) : graph_(&graph) {}

  /// Copies share the circuit but drop the arrival state (see above);
  /// moves keep it.
  IncrementalTiming(const IncrementalTiming& other) : graph_(other.graph_) {}
  IncrementalTiming& operator=(const IncrementalTiming& other) {
    graph_ = other.graph_;
    arrival_.clear();
    queued_.clear();
    journal_.clear();
    worst_ = 0.0;
    critical_ = netlist::kNoGate;
    valid_ = false;
    return *this;
  }
  IncrementalTiming(IncrementalTiming&&) = default;
  IncrementalTiming& operator=(IncrementalTiming&&) = default;

  /// False until the first rebuild() (and again after being copied from
  /// another instance): propagate()/probe() require a valid state.
  [[nodiscard]] bool valid() const noexcept { return valid_; }

  /// Critical path of the current state, in ps (requires valid()).
  [[nodiscard]] double worst_ps() const noexcept { return worst_; }

  /// Arrival time of a gate under the current state, in ps.
  [[nodiscard]] double arrival_ps(netlist::GateId g) const {
    return arrival_[g];
  }

  /// Full pass: recomputes every arrival from `factor` (a callable
  /// `double(GateId)`, >= 1 for logic gates), replacing the persistent
  /// state. Returns the critical path in ps.
  template <class FactorFn>
  double rebuild(FactorFn&& factor) {
    arrival_.assign(graph_->gate_count(), 0.0);
    queued_.assign(graph_->gate_count(), 0);
    worst_ = 0.0;
    critical_ = netlist::kNoGate;
    // Exactly est::degraded_critical_path_ps's recurrence: primary inputs
    // keep arrival 0 and do not contend for the maximum.
    for (const netlist::GateId id : graph_->order()) {
      const auto fanins = graph_->fanins(id);
      if (fanins.empty()) continue;
      double in_arrival = 0.0;
      for (const netlist::GateId f : fanins)
        in_arrival = std::max(in_arrival, arrival_[f]);
      const double delta = factor(id);
      IDDQ_ASSERT(delta >= 1.0);
      arrival_[id] = in_arrival + graph_->delay_ps(id) * delta;
      if (arrival_[id] > worst_) {
        worst_ = arrival_[id];
        critical_ = id;
      }
    }
    valid_ = true;
    return worst_;
  }

  /// Incremental pass: `changed` lists the gates whose factor may have
  /// changed since the last rebuild/propagate (duplicates and false
  /// positives are fine, order is irrelevant). Recomputes the affected
  /// cone against `factor` and commits. Returns the critical path in ps.
  template <class FactorFn>
  double propagate(std::span<const netlist::GateId> changed,
                   FactorFn&& factor) {
    return run_worklist<false>(changed, std::forward<FactorFn>(factor));
  }

  /// Like propagate(), but restores the pre-call state (arrivals and
  /// critical witness) before returning: a what-if query. Dense seed sets
  /// skip the journaled sweep for a plain pass into scratch storage that
  /// never touches the persistent arrivals — bit-identical either way.
  template <class FactorFn>
  double probe(std::span<const netlist::GateId> changed, FactorFn&& factor) {
    if (changed.size() * kDenseSeedFactor >= graph_->gate_count())
      return probe_full(std::forward<FactorFn>(factor));
    return run_worklist<true>(changed, std::forward<FactorFn>(factor));
  }

 private:
  /// Full pass into scratch storage (persistent state untouched).
  template <class FactorFn>
  double probe_full(FactorFn&& factor) {
    scratch_arrival_.assign(graph_->gate_count(), 0.0);
    double worst = 0.0;
    for (const netlist::GateId id : graph_->order()) {
      const auto fanins = graph_->fanins(id);
      if (fanins.empty()) continue;
      double in_arrival = 0.0;
      for (const netlist::GateId f : fanins)
        in_arrival = std::max(in_arrival, scratch_arrival_[f]);
      const double delta = factor(id);
      IDDQ_ASSERT(delta >= 1.0);
      scratch_arrival_[id] = in_arrival + graph_->delay_ps(id) * delta;
      worst = std::max(worst, scratch_arrival_[id]);
    }
    return worst;
  }

  template <bool kJournal, class FactorFn>
  double run_worklist(std::span<const netlist::GateId> changed,
                      FactorFn&& factor) {
    IDDQ_ASSERT(valid_);
    // Flag the seeds, then sweep the topological order from the lowest
    // seed rank, recomputing only flagged gates. A flag test per swept
    // gate is a load and a branch — far cheaper than a heap — so a dense
    // cone costs a plain full pass over the suffix while a sparse one
    // exits as soon as the pending count drains.
    std::size_t pending = 0;
    std::uint32_t min_rank = 0;
    for (const netlist::GateId id : changed) {
      if (queued_[id]) continue;
      queued_[id] = 1;
      const std::uint32_t rank = graph_->rank(id);
      if (pending == 0 || rank < min_rank) min_rank = rank;
      ++pending;
    }
    bool rescan = false;
    const double worst_before = worst_;
    const netlist::GateId critical_before = critical_;
    const auto order = graph_->order();
    for (std::size_t i = min_rank; i < order.size() && pending > 0; ++i) {
      const netlist::GateId id = order[i];
      if (!queued_[id]) continue;
      queued_[id] = 0;
      --pending;
      const auto fanins = graph_->fanins(id);
      if (fanins.empty()) continue;  // primary input: arrival pinned at 0
      double in_arrival = 0.0;
      for (const netlist::GateId f : fanins)
        in_arrival = std::max(in_arrival, arrival_[f]);
      const double delta = factor(id);
      IDDQ_ASSERT(delta >= 1.0);
      const double updated = in_arrival + graph_->delay_ps(id) * delta;
      const double old = arrival_[id];
      if (updated == old) continue;  // cone pruned here
      if constexpr (kJournal) journal_.emplace_back(id, old);
      arrival_[id] = updated;
      if (updated > worst_) {
        worst_ = updated;
        critical_ = id;
      } else if (id == critical_ && updated < old) {
        // The witness itself got faster; the true maximum may now be held
        // by an untouched gate. Settle it once the sweep drains.
        rescan = true;
      }
      for (const netlist::GateId f : graph_->fanouts(id)) {
        if (queued_[f]) continue;  // fanouts rank higher: swept later
        queued_[f] = 1;
        ++pending;
      }
    }
    if (rescan && critical_ == critical_before) rescan_worst();
    const double result = worst_;
    if constexpr (kJournal) {
      for (auto it = journal_.rbegin(); it != journal_.rend(); ++it)
        arrival_[it->first] = it->second;
      journal_.clear();
      worst_ = worst_before;
      critical_ = critical_before;
    }
    return result;
  }

  void rescan_worst();

  const TimingGraph* graph_;

  std::vector<double> arrival_;          // by GateId; inputs stay 0
  double worst_ = 0.0;
  netlist::GateId critical_ = netlist::kNoGate;  // witness of worst_
  bool valid_ = false;

  // Worklist scratch (contents are meaningless between calls).
  std::vector<std::uint8_t> queued_;     // by GateId
  std::vector<std::pair<netlist::GateId, double>> journal_;
  std::vector<double> scratch_arrival_;  // probe_full working array
};

}  // namespace iddq::est
