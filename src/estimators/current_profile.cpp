#include "estimators/current_profile.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iddq::est {

void ModuleCurrentProfile::sync_tree() const {
  if (!tree_stale_) return;
  for (std::size_t i = grid_; i-- > 1;) {
    current_ua_[i] = std::max(current_ua_[2 * i], current_ua_[2 * i + 1]);
    switching_[i] = std::max(switching_[2 * i], switching_[2 * i + 1]);
  }
  tree_stale_ = false;
}

void ModuleCurrentProfile::range_max_into(std::size_t lo, std::size_t hi,
                                          OverlayMax& best) const {
  // Iterative segment-tree query over leaf slots [lo, hi); correct for
  // arbitrary (non-power-of-two) grid sizes with the [grid_, 2*grid_)
  // leaf layout. Requires a synced tree.
  for (std::size_t l = grid_ + lo, r = grid_ + hi; l < r; l >>= 1, r >>= 1) {
    if ((l & 1) != 0) {
      best.current_ua = std::max(best.current_ua, current_ua_[l]);
      best.switching = std::max(best.switching, switching_[l]);
      ++l;
    }
    if ((r & 1) != 0) {
      --r;
      best.current_ua = std::max(best.current_ua, current_ua_[r]);
      best.switching = std::max(best.switching, switching_[r]);
    }
  }
}

void ModuleCurrentProfile::add_gate(const DynamicBitset& times,
                                    double ipeak_ua) {
  IDDQ_ASSERT(times.size() == grid_);
  times.for_each([&](std::size_t t) {
    current_ua_[grid_ + t] += ipeak_ua;
    switching_[grid_ + t] += 1;
  });
  tree_stale_ = true;
}

void ModuleCurrentProfile::remove_gate(const DynamicBitset& times,
                                       double ipeak_ua) {
  IDDQ_ASSERT(times.size() == grid_);
  times.for_each([&](std::size_t t) {
    const std::size_t leaf = grid_ + t;
    current_ua_[leaf] -= ipeak_ua;
    IDDQ_ASSERT(switching_[leaf] > 0);
    switching_[leaf] -= 1;
    if (switching_[leaf] == 0) current_ua_[leaf] = 0.0;  // cancel fp residue
  });
  tree_stale_ = true;
}

std::uint32_t ModuleCurrentProfile::peak_overlap(
    const DynamicBitset& times) const {
  IDDQ_ASSERT(times.size() == grid_);
  std::uint32_t best = 0;
  times.for_each(
      [&](std::size_t t) { best = std::max(best, switching_[grid_ + t]); });
  return best == 0 ? 1 : best;
}

ModuleCurrentProfile::OverlayMax ModuleCurrentProfile::max_with_gate_added(
    const DynamicBitset& times, double ipeak_ua) const {
  IDDQ_ASSERT(times.size() == grid_);
  sync_tree();
  const std::size_t lo = times.find_first();
  if (lo == grid_) return {max_current_ua(), max_switching()};
  const std::size_t hi = times.find_last();  // inclusive
  OverlayMax best;
  std::size_t next = lo;
  for (std::size_t t = lo; t <= hi; ++t) {
    double i = current_ua_[grid_ + t];
    std::uint32_t n = switching_[grid_ + t];
    if (t == next) {
      i += ipeak_ua;
      n += 1;
      next = times.find_next(t);
    }
    best.current_ua = std::max(best.current_ua, i);
    best.switching = std::max(best.switching, n);
  }
  range_max_into(0, lo, best);
  range_max_into(hi + 1, grid_, best);
  return best;
}

ModuleCurrentProfile::OverlayMax ModuleCurrentProfile::max_with_gate_removed(
    const DynamicBitset& times, double ipeak_ua) const {
  IDDQ_ASSERT(times.size() == grid_);
  sync_tree();
  const std::size_t lo = times.find_first();
  if (lo == grid_) return {max_current_ua(), max_switching()};
  const std::size_t hi = times.find_last();  // inclusive
  OverlayMax best;
  std::size_t next = lo;
  for (std::size_t t = lo; t <= hi; ++t) {
    double i = current_ua_[grid_ + t];
    std::uint32_t n = switching_[grid_ + t];
    if (t == next) {
      IDDQ_ASSERT(n > 0);
      n -= 1;
      i = n == 0 ? 0.0 : i - ipeak_ua;  // remove_gate's residue cancel
      next = times.find_next(t);
    }
    best.current_ua = std::max(best.current_ua, i);
    best.switching = std::max(best.switching, n);
  }
  range_max_into(0, lo, best);
  range_max_into(hi + 1, grid_, best);
  return best;
}

double ModuleCurrentProfile::scan_max_current_ua() const {
  double best = 0.0;
  for (const double v : current_ua()) best = std::max(best, v);
  return best;
}

std::uint32_t ModuleCurrentProfile::scan_max_switching() const {
  std::uint32_t best = 0;
  for (const std::uint32_t v : switching()) best = std::max(best, v);
  return best;
}

ModuleCurrentProfile::OverlayMax
ModuleCurrentProfile::scan_max_with_gate_added(const DynamicBitset& times,
                                               double ipeak_ua) const {
  IDDQ_ASSERT(times.size() == grid_);
  const auto cur = current_ua();
  const auto sw = switching();
  OverlayMax best;
  std::size_t next = times.find_first();
  for (std::size_t t = 0; t < grid_; ++t) {
    double i = cur[t];
    std::uint32_t n = sw[t];
    if (t == next) {
      i += ipeak_ua;
      n += 1;
      next = times.find_next(t);
    }
    best.current_ua = std::max(best.current_ua, i);
    best.switching = std::max(best.switching, n);
  }
  return best;
}

ModuleCurrentProfile::OverlayMax
ModuleCurrentProfile::scan_max_with_gate_removed(const DynamicBitset& times,
                                                 double ipeak_ua) const {
  IDDQ_ASSERT(times.size() == grid_);
  const auto cur = current_ua();
  const auto sw = switching();
  OverlayMax best;
  std::size_t next = times.find_first();
  for (std::size_t t = 0; t < grid_; ++t) {
    double i = cur[t];
    std::uint32_t n = sw[t];
    if (t == next) {
      IDDQ_ASSERT(n > 0);
      n -= 1;
      i = n == 0 ? 0.0 : i - ipeak_ua;  // remove_gate's residue cancel
      next = times.find_next(t);
    }
    best.current_ua = std::max(best.current_ua, i);
    best.switching = std::max(best.switching, n);
  }
  return best;
}

void ModuleCurrentProfile::self_check() const {
  require(current_ua_.size() == 2 * grid_ && switching_.size() == 2 * grid_,
          "current profile self-check: tree storage size mismatch");
  sync_tree();
  for (std::size_t i = 1; i < grid_; ++i) {
    require(current_ua_[i] ==
                std::max(current_ua_[2 * i], current_ua_[2 * i + 1]),
            "current profile self-check: stale current tree node");
    require(switching_[i] ==
                std::max(switching_[2 * i], switching_[2 * i + 1]),
            "current profile self-check: stale switching tree node");
  }
  require(max_current_ua() == scan_max_current_ua(),
          "current profile self-check: tree max != scanned max current");
  require(max_switching() == scan_max_switching(),
          "current profile self-check: tree max != scanned max switching");
}

ModuleCurrentProfile profile_of(const TransitionTimes& tt,
                                std::span<const lib::CellParams> cells,
                                std::span<const netlist::GateId> gates) {
  ModuleCurrentProfile p(tt.grid_size());
  for (const netlist::GateId id : gates)
    p.add_gate(tt.at(id), cells[id].ipeak_ua);
  return p;
}

ModuleCurrentProfile circuit_profile(const netlist::Netlist& nl,
                                     const TransitionTimes& tt,
                                     std::span<const lib::CellParams> cells) {
  return profile_of(tt, cells, nl.logic_gates());
}

}  // namespace iddq::est
