#include "estimators/current_profile.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace iddq::est {

void ModuleCurrentProfile::add_gate(const DynamicBitset& times,
                                    double ipeak_ua) {
  IDDQ_ASSERT(times.size() == current_ua_.size());
  times.for_each([&](std::size_t t) {
    current_ua_[t] += ipeak_ua;
    switching_[t] += 1;
  });
}

void ModuleCurrentProfile::remove_gate(const DynamicBitset& times,
                                       double ipeak_ua) {
  IDDQ_ASSERT(times.size() == current_ua_.size());
  times.for_each([&](std::size_t t) {
    current_ua_[t] -= ipeak_ua;
    IDDQ_ASSERT(switching_[t] > 0);
    switching_[t] -= 1;
    if (switching_[t] == 0) current_ua_[t] = 0.0;  // cancel fp residue
  });
}

double ModuleCurrentProfile::max_current_ua() const {
  double best = 0.0;
  for (const double v : current_ua_) best = std::max(best, v);
  return best;
}

std::uint32_t ModuleCurrentProfile::max_switching() const {
  std::uint32_t best = 0;
  for (const std::uint32_t v : switching_) best = std::max(best, v);
  return best;
}

std::uint32_t ModuleCurrentProfile::peak_overlap(
    const DynamicBitset& times) const {
  IDDQ_ASSERT(times.size() == switching_.size());
  std::uint32_t best = 0;
  times.for_each(
      [&](std::size_t t) { best = std::max(best, switching_[t]); });
  return best == 0 ? 1 : best;
}

ModuleCurrentProfile::OverlayMax ModuleCurrentProfile::max_with_gate_added(
    const DynamicBitset& times, double ipeak_ua) const {
  IDDQ_ASSERT(times.size() == current_ua_.size());
  OverlayMax best;
  std::size_t next = times.find_first();
  for (std::size_t t = 0; t < current_ua_.size(); ++t) {
    double i = current_ua_[t];
    std::uint32_t n = switching_[t];
    if (t == next) {
      i += ipeak_ua;
      n += 1;
      next = times.find_next(t);
    }
    best.current_ua = std::max(best.current_ua, i);
    best.switching = std::max(best.switching, n);
  }
  return best;
}

ModuleCurrentProfile::OverlayMax ModuleCurrentProfile::max_with_gate_removed(
    const DynamicBitset& times, double ipeak_ua) const {
  IDDQ_ASSERT(times.size() == current_ua_.size());
  OverlayMax best;
  std::size_t next = times.find_first();
  for (std::size_t t = 0; t < current_ua_.size(); ++t) {
    double i = current_ua_[t];
    std::uint32_t n = switching_[t];
    if (t == next) {
      IDDQ_ASSERT(n > 0);
      n -= 1;
      i = n == 0 ? 0.0 : i - ipeak_ua;  // remove_gate's residue cancel
      next = times.find_next(t);
    }
    best.current_ua = std::max(best.current_ua, i);
    best.switching = std::max(best.switching, n);
  }
  return best;
}

ModuleCurrentProfile profile_of(const TransitionTimes& tt,
                                std::span<const lib::CellParams> cells,
                                std::span<const netlist::GateId> gates) {
  ModuleCurrentProfile p(tt.grid_size());
  for (const netlist::GateId id : gates)
    p.add_gate(tt.at(id), cells[id].ipeak_ua);
  return p;
}

ModuleCurrentProfile circuit_profile(const netlist::Netlist& nl,
                                     const TransitionTimes& tt,
                                     std::span<const lib::CellParams> cells) {
  return profile_of(tt, cells, nl.logic_gates());
}

}  // namespace iddq::est
