// Test-application-time estimator (paper section 3.4).
//
// The partitioning does not change the logic, so the precomputed IDDQ test
// vector set is unchanged; what changes is the time *per vector*: after
// applying a vector the responses must propagate (D_BIC) and then the
// transient current must decay and be sensed (Delta(tau_i), section 3.4's
// SPICE-calibrated term). All sensors observe in parallel, so the slowest
// module dominates:
//
//   T_test,BIC = N_vec * ( D_BIC + max_i Delta(tau_i) )
//   T_test,0   = N_vec * D
//   c4         = (T_test,BIC - T_test,0) / T_test,0
//
// (the vector count cancels in the ratio; it is kept in the reporting API
// for absolute times).
#pragma once

#include <span>

namespace iddq::est {

struct TestTimeBreakdown {
  double d_nominal_ps = 0.0;
  double d_bic_ps = 0.0;
  double settle_max_ps = 0.0;  // max_i Delta(tau_i)
  std::size_t vectors = 0;

  /// Absolute test time with BIC sensors, in ps.
  [[nodiscard]] double total_bic_ps() const {
    return static_cast<double>(vectors) * (d_bic_ps + settle_max_ps);
  }
  /// Absolute test time of plain (off-chip measurement-free) application.
  [[nodiscard]] double total_nominal_ps() const {
    return static_cast<double>(vectors) * d_nominal_ps;
  }
  /// The c4 overhead ratio.
  [[nodiscard]] double overhead() const {
    return (d_bic_ps + settle_max_ps - d_nominal_ps) / d_nominal_ps;
  }
};

/// Convenience: c4 from the three time components.
[[nodiscard]] double test_time_overhead(double d_nominal_ps, double d_bic_ps,
                                        double settle_max_ps);

}  // namespace iddq::est
