// Module current profiles: the paper's pessimistic max-iDD estimator.
//
//   iDD_max(M) = max over t of  sum over { g in M : t in T(g) } ipeak(g)
//
// A ModuleCurrentProfile maintains the inner sum for every grid slot t plus
// the switching-gate count n(t) (needed by the delay-degradation model) and
// supports O(grid/64) add/remove of a gate, which is what makes the
// evolution strategy's incremental cost recomputation cheap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "estimators/transition_times.hpp"
#include "library/cell.hpp"
#include "netlist/netlist.hpp"

namespace iddq::est {

class ModuleCurrentProfile {
 public:
  ModuleCurrentProfile() = default;
  explicit ModuleCurrentProfile(std::size_t grid_size)
      : current_ua_(grid_size, 0.0), switching_(grid_size, 0) {}

  void add_gate(const DynamicBitset& times, double ipeak_ua);
  void remove_gate(const DynamicBitset& times, double ipeak_ua);

  /// iDD_max over the grid, in uA. O(grid).
  [[nodiscard]] double max_current_ua() const;

  /// Largest switching-gate count over the grid. O(grid).
  [[nodiscard]] std::uint32_t max_switching() const;

  /// Switching-gate count profile n(t).
  [[nodiscard]] std::span<const std::uint32_t> switching() const noexcept {
    return switching_;
  }

  /// Current profile i(t), in uA.
  [[nodiscard]] std::span<const double> current_ua() const noexcept {
    return current_ua_;
  }

  /// Largest n(t) over t in T(g): the simultaneity a gate experiences,
  /// used as the delay model's n for that gate. Returns at least 1 when
  /// the gate itself is in the module.
  [[nodiscard]] std::uint32_t peak_overlap(const DynamicBitset& times) const;

  /// Grid maxima of the profile as it would look after add_gate /
  /// remove_gate, computed by a read-only scan — no materialised copy.
  /// Slot values replicate the committed update arithmetic exactly
  /// (including remove_gate's zero-cancellation), so the maxima are
  /// bit-equal to copy + update + max_*(). The evaluator's copy-free
  /// move probing is built on this.
  struct OverlayMax {
    double current_ua = 0.0;
    std::uint32_t switching = 0;
  };
  [[nodiscard]] OverlayMax max_with_gate_added(const DynamicBitset& times,
                                               double ipeak_ua) const;
  [[nodiscard]] OverlayMax max_with_gate_removed(const DynamicBitset& times,
                                                 double ipeak_ua) const;

  friend bool operator==(const ModuleCurrentProfile&,
                         const ModuleCurrentProfile&) = default;

 private:
  std::vector<double> current_ua_;
  std::vector<std::uint32_t> switching_;
};

/// Builds the profile of an arbitrary gate set.
[[nodiscard]] ModuleCurrentProfile profile_of(
    const TransitionTimes& tt, std::span<const lib::CellParams> cells,
    std::span<const netlist::GateId> gates);

/// Whole-circuit profile (all logic gates in one virtual module) — the
/// size-planner's "average numbers" abstraction uses this.
[[nodiscard]] ModuleCurrentProfile circuit_profile(
    const netlist::Netlist& nl, const TransitionTimes& tt,
    std::span<const lib::CellParams> cells);

}  // namespace iddq::est
