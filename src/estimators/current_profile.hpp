// Module current profiles: the paper's pessimistic max-iDD estimator.
//
//   iDD_max(M) = max over t of  sum over { g in M : t in T(g) } ipeak(g)
//
// A ModuleCurrentProfile maintains the inner sum for every grid slot t plus
// the switching-gate count n(t) (needed by the delay-degradation model).
// Both profiles live in the leaf row of a 1-based tournament (max segment)
// tree whose internal nodes are rebuilt LAZILY: committed add/remove of a
// gate touch only the O(|T(g)|) leaves — exactly the historical update
// cost — and mark the tree stale; the first max query after a batch of
// commits rebuilds the internal nodes with one O(grid) bottom-up pass
// (replacing the historical pair of O(grid) scans), after which maxima are
// O(1) root reads. The copy-free overlay probes
// (max_with_gate_{added,removed}) run on a synced tree without mutating
// it: one pass over the gate's touched span [first slot of T(g), last
// slot of T(g)] applies the committed update arithmetic per slot, and
// the untouched prefix/suffix contribute via two O(log grid) range-max
// tree queries — a move probe therefore costs O(span(T(g)) + log grid),
// independent of the grid size. The scan_* methods keep the historical
// O(grid) paths callable as bit-identity references for tests and
// bench/perf_micro.cpp.
//
// Thread-safety: const max queries may rebuild the stale tree (mutable
// state), so a profile shared across threads must be synced first — any
// max query does it; PartitionEvaluator::refresh() before probe fan-out is
// the canonical place. Clean profiles are safe for concurrent const reads.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "estimators/transition_times.hpp"
#include "library/cell.hpp"
#include "netlist/netlist.hpp"

namespace iddq::est {

class ModuleCurrentProfile {
 public:
  ModuleCurrentProfile() = default;
  explicit ModuleCurrentProfile(std::size_t grid_size)
      : grid_(grid_size),
        current_ua_(2 * grid_size, 0.0),
        switching_(2 * grid_size, 0) {}

  /// O(|T(g)|): leaf-only updates, tree marked stale.
  void add_gate(const DynamicBitset& times, double ipeak_ua);
  void remove_gate(const DynamicBitset& times, double ipeak_ua);

  /// iDD_max over the grid, in uA. O(1) on a synced tree; one O(grid)
  /// rebuild after a batch of committed updates.
  [[nodiscard]] double max_current_ua() const {
    sync_tree();
    return grid_ == 0 ? 0.0 : std::max(current_ua_[1], 0.0);
  }

  /// Largest switching-gate count over the grid. O(1) on a synced tree.
  [[nodiscard]] std::uint32_t max_switching() const {
    sync_tree();
    return grid_ == 0 ? 0 : switching_[1];
  }

  /// Switching-gate count profile n(t) (the tree's leaf row).
  [[nodiscard]] std::span<const std::uint32_t> switching() const noexcept {
    return std::span<const std::uint32_t>(switching_).subspan(grid_);
  }

  /// Current profile i(t), in uA (the tree's leaf row).
  [[nodiscard]] std::span<const double> current_ua() const noexcept {
    return std::span<const double>(current_ua_).subspan(grid_);
  }

  /// Largest n(t) over t in T(g): the simultaneity a gate experiences,
  /// used as the delay model's n for that gate. Returns at least 1 when
  /// the gate itself is in the module. Reads leaves only (stale-safe).
  [[nodiscard]] std::uint32_t peak_overlap(const DynamicBitset& times) const;

  /// Grid maxima of the profile as it would look after add_gate /
  /// remove_gate — no materialised copy, no tree mutation. Slot values
  /// replicate the committed update arithmetic exactly (including
  /// remove_gate's zero-cancellation), so the maxima are bit-equal to
  /// copy + update + max_*(). One pass walks the touched span of T(g)
  /// applying the overlay per slot; the untouched prefix and suffix of
  /// the grid contribute through two range-max queries on the synced
  /// tree — O(span(T(g)) + log grid) per probe instead of an O(grid)
  /// scan. The evaluator's copy-free move probing is built on this.
  struct OverlayMax {
    double current_ua = 0.0;
    std::uint32_t switching = 0;
  };
  [[nodiscard]] OverlayMax max_with_gate_added(const DynamicBitset& times,
                                               double ipeak_ua) const;
  [[nodiscard]] OverlayMax max_with_gate_removed(const DynamicBitset& times,
                                                 double ipeak_ua) const;

  /// Historical O(grid) maxima, kept as the bit-identity reference the
  /// property tests pin the tree against (and perf_micro measures).
  [[nodiscard]] double scan_max_current_ua() const;
  [[nodiscard]] std::uint32_t scan_max_switching() const;
  [[nodiscard]] OverlayMax scan_max_with_gate_added(const DynamicBitset& times,
                                                    double ipeak_ua) const;
  [[nodiscard]] OverlayMax scan_max_with_gate_removed(
      const DynamicBitset& times, double ipeak_ua) const;

  /// Validates the incremental max state: syncs the tree, then requires
  /// every internal node to equal the max of its children and the O(1)
  /// maxima to match the O(grid) reference scans. Throws on violation.
  void self_check() const;

  /// Leaf rows are the semantic state; stale internal nodes are not.
  friend bool operator==(const ModuleCurrentProfile& a,
                         const ModuleCurrentProfile& b) {
    return a.grid_ == b.grid_ &&
           std::equal(a.current_ua().begin(), a.current_ua().end(),
                      b.current_ua().begin(), b.current_ua().end()) &&
           std::equal(a.switching().begin(), a.switching().end(),
                      b.switching().begin(), b.switching().end());
  }

 private:
  // 1-based tournament trees: node i's children are 2i and 2i+1, leaves
  // live at [grid_, 2*grid_) and double as the profile storage. Valid for
  // any grid size: every leaf's parent chain ends at node 1, whose value
  // is therefore the grid max. Mutable so const max queries can rebuild
  // the lazily maintained internal nodes.
  std::size_t grid_ = 0;
  mutable std::vector<double> current_ua_;
  mutable std::vector<std::uint32_t> switching_;
  mutable bool tree_stale_ = false;

  void sync_tree() const;
  /// Max over leaf slots [lo, hi) on a synced tree, folded into `best`.
  void range_max_into(std::size_t lo, std::size_t hi, OverlayMax& best) const;
};

/// Builds the profile of an arbitrary gate set.
[[nodiscard]] ModuleCurrentProfile profile_of(
    const TransitionTimes& tt, std::span<const lib::CellParams> cells,
    std::span<const netlist::GateId> gates);

/// Whole-circuit profile (all logic gates in one virtual module) — the
/// size-planner's "average numbers" abstraction uses this.
[[nodiscard]] ModuleCurrentProfile circuit_profile(
    const netlist::Netlist& nl, const TransitionTimes& tt,
    std::span<const lib::CellParams> cells);

}  // namespace iddq::est
