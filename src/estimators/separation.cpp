#include "estimators/separation.hpp"

#include "support/error.hpp"

namespace iddq::est {

double sum_to_module(const netlist::DistanceOracle& oracle, netlist::GateId g,
                     std::uint32_t module_id,
                     std::span<const std::uint32_t> module_of,
                     std::size_t module_size) {
  const double rho = static_cast<double>(oracle.rho());
  double sum = static_cast<double>(module_size) * rho;
  for (const auto& [neighbor, distance] : oracle.near(g)) {
    if (neighbor == g) continue;
    if (module_of[neighbor] != module_id) continue;
    sum -= rho - static_cast<double>(distance);
  }
  return sum;
}

double module_separation(const netlist::DistanceOracle& oracle,
                         std::span<const netlist::GateId> gates,
                         std::uint32_t module_id,
                         std::span<const std::uint32_t> module_of) {
  // Accumulate half of the directed sums (each unordered pair counted once).
  double sum = 0.0;
  for (const netlist::GateId g : gates) {
    IDDQ_ASSERT(module_of[g] == module_id);
    sum += sum_to_module(oracle, g, module_id, module_of, gates.size() - 1);
  }
  return sum / 2.0;
}

}  // namespace iddq::est
