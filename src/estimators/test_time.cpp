#include "estimators/test_time.hpp"

#include "support/error.hpp"

namespace iddq::est {

double test_time_overhead(double d_nominal_ps, double d_bic_ps,
                          double settle_max_ps) {
  require(d_nominal_ps > 0.0, "test time: nominal delay must be positive");
  require(d_bic_ps >= d_nominal_ps, "test time: D_BIC must be >= D");
  require(settle_max_ps >= 0.0, "test time: settle time must be >= 0");
  return (d_bic_ps + settle_max_ps - d_nominal_ps) / d_nominal_ps;
}

}  // namespace iddq::est
