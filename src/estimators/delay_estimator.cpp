#include "estimators/delay_estimator.hpp"

#include <algorithm>

#include "electrical/delay_model.hpp"
#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::est {

namespace {

double critical_path_ps(const netlist::Netlist& nl,
                        std::span<const lib::CellParams> cells,
                        std::span<const double> delta) {
  std::vector<double> arrival(nl.gate_count(), 0.0);
  double worst = 0.0;
  for (const netlist::GateId id : netlist::topological_order(nl)) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;  // primary input, arrival 0
    double in_arrival = 0.0;
    for (const netlist::GateId f : g.fanins)
      in_arrival = std::max(in_arrival, arrival[f]);
    const double factor = delta.empty() ? 1.0 : delta[id];
    IDDQ_ASSERT(delta.empty() || factor >= 1.0);
    arrival[id] = in_arrival + cells[id].delay_ps * factor;
    worst = std::max(worst, arrival[id]);
  }
  return worst;
}

}  // namespace

double nominal_critical_path_ps(const netlist::Netlist& nl,
                                std::span<const lib::CellParams> cells) {
  return critical_path_ps(nl, cells, {});
}

double degraded_critical_path_ps(const netlist::Netlist& nl,
                                 std::span<const lib::CellParams> cells,
                                 std::span<const double> delta) {
  IDDQ_ASSERT(delta.size() == nl.gate_count());
  return critical_path_ps(nl, cells, delta);
}

DeltaInterpolator::DeltaInterpolator(double rs_kohm, double cs_ff,
                                     double cg_ff, double rg_kohm,
                                     std::uint32_t n_max)
    : n_max_(std::max<std::uint32_t>(n_max, 1)) {
  elec::DelayModelInput in;
  in.rs_kohm = rs_kohm;
  in.cs_ff = cs_ff;
  in.cg_ff = cg_ff;
  in.rg_kohm = rg_kohm;
  in.n = 1;
  delta1_ = elec::DelayDegradationModel::delta(in);
  if (n_max_ > 1) {
    in.n = n_max_;
    const double delta_hi = elec::DelayDegradationModel::delta(in);
    slope_ = (delta_hi - delta1_) / static_cast<double>(n_max_ - 1);
  }
}

double DeltaInterpolator::at(std::uint32_t n) const {
  IDDQ_ASSERT(n >= 1);
  const std::uint32_t clamped = std::min(n, n_max_);
  return delta1_ + slope_ * static_cast<double>(clamped - 1);
}

}  // namespace iddq::est
