#include "estimators/leakage.hpp"

namespace iddq::est {

double module_leakage_ua(std::span<const lib::CellParams> cells,
                         std::span<const netlist::GateId> gates) {
  double sum_na = 0.0;
  for (const netlist::GateId id : gates) sum_na += cells[id].ileak_na;
  return units::na_to_ua(sum_na);
}

double discriminability(double iddq_th_ua, double leakage_ua) {
  if (leakage_ua <= 0.0) return 1.0e12;
  return iddq_th_ua / leakage_ua;
}

}  // namespace iddq::est
