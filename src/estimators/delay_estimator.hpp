// Critical-path delay estimation (paper section 3.2).
//
//   c2 = (D_BIC - D) / D
//
// where D is the longest-path delay with nominal gate delays D(g) and D_BIC
// uses degraded delays D_BIC(g) = D(g) * delta(g). The degradation factor of
// a gate depends on its module's sensor (R_s, C_s) and on the number of
// simultaneously switching module gates n(t). The evaluator charges every
// gate its module's *peak* simultaneity n_max,m — the paper's pessimistic
// treatment of the time-grid functions delta(g, t) — which also makes c2
// nearly partition-invariant (n_max * R_s self-normalises; see
// partition/evaluator.cpp).
//
// DeltaInterpolator is the cheaper two-anchor alternative (delta evaluated
// at n = 1 and n = n_max, linear in between; delta is close to affine in n
// because the rail perturbation scales with n * R_s). It is exposed for
// clients that need per-gate n resolution, with the interpolation error
// bounded by tests.
#pragma once

#include <span>
#include <vector>

#include "library/cell.hpp"
#include "netlist/netlist.hpp"

namespace iddq::est {

/// Longest path with nominal delays, in ps.
[[nodiscard]] double nominal_critical_path_ps(
    const netlist::Netlist& nl, std::span<const lib::CellParams> cells);

/// Longest path with per-gate degraded delays D(g) * delta[g], in ps.
/// `delta` is indexed by GateId; entries for primary inputs are ignored.
[[nodiscard]] double degraded_critical_path_ps(
    const netlist::Netlist& nl, std::span<const lib::CellParams> cells,
    std::span<const double> delta);

/// Exact two-anchor interpolation of the second-order delay model in n:
/// delta(n) ~ delta(1) + (delta(n_max)-delta(1)) * (n-1)/(n_max-1).
class DeltaInterpolator {
 public:
  /// Anchors for a (module sensor, cell type) pair.
  DeltaInterpolator(double rs_kohm, double cs_ff, double cg_ff,
                    double rg_kohm, std::uint32_t n_max);

  [[nodiscard]] double at(std::uint32_t n) const;

 private:
  double delta1_ = 1.0;
  double slope_ = 0.0;
  std::uint32_t n_max_ = 1;
};

}  // namespace iddq::est
