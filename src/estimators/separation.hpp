// Separation-parameter estimators (paper section 3.3).
//
//   S(g_i, g_j): hop distance in the undirected circuit graph, saturated at
//                rho (see netlist/distance_oracle.hpp for the convention);
//   S(M) = sum over unordered gate pairs of M;
//   S(Pi) = sum over modules.
//
// The quadratic-per-module full computation is only used for initialisation
// and verification; the evaluator keeps S(M) incrementally using
// sum_to_module: moving gate g from M1 to M2 changes
//   S(M1) by -sum_to_module(g, M1 \ {g}),  S(M2) by +sum_to_module(g, M2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/distance_oracle.hpp"
#include "netlist/netlist.hpp"

namespace iddq::est {

/// Sum of separations from `g` to every gate of the module identified by
/// `module_id` (g itself excluded if present). `module_of[h]` gives the
/// module of gate h (any sentinel for unassigned), `module_size` the number
/// of gates in the module *excluding* g when g currently belongs to it.
///
/// Computed as module_size * rho - sum over near-neighbours of (rho - d):
/// O(|near(g)|) regardless of module size.
[[nodiscard]] double sum_to_module(const netlist::DistanceOracle& oracle,
                                   netlist::GateId g, std::uint32_t module_id,
                                   std::span<const std::uint32_t> module_of,
                                   std::size_t module_size);

/// Full S(M) over a gate set; O(|M| * |near|).
[[nodiscard]] double module_separation(const netlist::DistanceOracle& oracle,
                                       std::span<const netlist::GateId> gates,
                                       std::uint32_t module_id,
                                       std::span<const std::uint32_t> module_of);

}  // namespace iddq::est
