#include "estimators/transition_times.hpp"

#include <algorithm>
#include <cmath>

#include "netlist/levelize.hpp"
#include "support/error.hpp"

namespace iddq::est {

TransitionTimes::TransitionTimes(const netlist::Netlist& nl) {
  std::vector<std::size_t> slot_delay(nl.gate_count(), 1);
  build(nl, slot_delay);
}

TransitionTimes::TransitionTimes(const netlist::Netlist& nl,
                                 std::span<const lib::CellParams> cells,
                                 double bin_ps)
    : bin_ps_(bin_ps) {
  require(bin_ps > 0.0, "transition times: bin width must be positive");
  require(cells.size() == nl.gate_count(),
          "transition times: cells must be bound to the netlist");
  std::vector<std::size_t> slot_delay(nl.gate_count(), 0);
  for (const netlist::GateId g : nl.logic_gates()) {
    const auto slots =
        static_cast<std::size_t>(std::llround(cells[g].delay_ps / bin_ps));
    slot_delay[g] = std::max<std::size_t>(1, slots);
  }
  build(nl, slot_delay);
}

void TransitionTimes::build(const netlist::Netlist& nl,
                            std::span<const std::size_t> slot_delay) {
  // Grid bound: longest path in quantized slots.
  std::vector<std::size_t> arrival(nl.gate_count(), 0);
  std::size_t worst = 0;
  const auto order = netlist::topological_order(nl);
  for (const netlist::GateId id : order) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) continue;
    std::size_t in_arrival = 0;
    for (const netlist::GateId f : g.fanins)
      in_arrival = std::max(in_arrival, arrival[f]);
    arrival[id] = in_arrival + slot_delay[id];
    worst = std::max(worst, arrival[id]);
  }
  grid_ = worst + 1;

  times_.assign(nl.gate_count(), DynamicBitset(grid_));
  for (const netlist::GateId id : order) {
    const auto& g = nl.gate(id);
    if (g.fanins.empty()) {
      times_[id].set(0);  // primary input: switches with pattern application
      continue;
    }
    for (const netlist::GateId f : g.fanins)
      times_[id].or_shifted(times_[f], slot_delay[id]);
  }
}

}  // namespace iddq::est
