// Shared configuration for the reproduction benches.
//
// Every bench prints the paper-reported values next to the measured ones;
// EXPERIMENTS.md is generated from exactly these binaries' output.
#pragma once

#include <cstdlib>
#include <string>

#include "core/flow.hpp"

namespace iddq::bench {

/// The flow configuration used by the Table 1 reproduction. The evolution
/// budget can be scaled down for smoke runs via IDDQSYN_BENCH_FAST=1.
inline core::FlowConfig paper_flow_config(std::uint64_t seed = 42) {
  core::FlowConfig cfg;
  cfg.es.mu = 8;
  cfg.es.lambda = 7;
  cfg.es.chi = 2;
  cfg.es.kappa = 8;
  cfg.es.m0 = 4;
  cfg.es.epsilon = 1.0;
  cfg.es.max_generations = 350;
  cfg.es.stall_generations = 60;
  cfg.es.seed = seed;
  if (const char* fast = std::getenv("IDDQSYN_BENCH_FAST");
      fast != nullptr && std::string(fast) == "1") {
    cfg.es.max_generations = 60;
    cfg.es.stall_generations = 20;
  }
  return cfg;
}

}  // namespace iddq::bench
