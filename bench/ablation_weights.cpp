// Ablation: sensitivity to the cost-weight vector.
//
// The paper fixes C(Pi) = 9*c1 + 1e5*c2 + c3 + c4 + 10*c5 "to obtain
// IDDQ-testable circuits with minimal area-overhead which still satisfy
// performance requirements". This bench re-runs the flow with each weight
// scaled up and down to show which objective actually steers the optimum
// in each regime (DESIGN.md section 5, decision 8).
#include <iostream>

#include "core/flow.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  std::cout << "=== Ablation: cost-weight sensitivity (c1908) ===\n\n";

  const auto nl = netlist::gen::make_iscas_like("c1908");
  const auto library = lib::default_library();

  struct Variant {
    const char* label;
    part::CostWeights weights;
  };
  const Variant variants[] = {
      {"paper (9,1e5,1,1,10)", part::CostWeights{}},
      {"area x10 (a1=90)", {90.0, 1.0e5, 1.0, 1.0, 10.0}},
      {"delay off (a2=0)", {9.0, 0.0, 1.0, 1.0, 10.0}},
      {"delay x10 (a2=1e6)", {9.0, 1.0e6, 1.0, 1.0, 10.0}},
      {"wiring x100 (a3=100)", {9.0, 1.0e5, 100.0, 1.0, 10.0}},
      {"test-time x100 (a4=100)", {9.0, 1.0e5, 1.0, 100.0, 10.0}},
      {"sensors cheap (a5=0)", {9.0, 1.0e5, 1.0, 1.0, 0.0}},
  };

  report::TextTable table({"weights", "K", "area", "c2", "c3", "c4",
                           "std area ovh"});
  for (const auto& v : variants) {
    core::FlowConfig cfg;
    cfg.weights = v.weights;
    cfg.es.max_generations = 150;
    cfg.es.stall_generations = 40;
    cfg.es.seed = 42;
    const auto result = core::run_flow(nl, library, cfg);
    table.add_row({v.label, std::to_string(result.evolution.module_count),
                   report::format_eng(result.evolution.sensor_area),
                   report::format_eng(result.evolution.costs.c2),
                   report::format_fixed(result.evolution.costs.c3, 1),
                   report::format_eng(result.evolution.costs.c4),
                   report::format_pct(result.standard_area_overhead_pct(),
                                      true)});
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: raising a1 tightens sensor area; removing a2 lets the ES\n"
      "trade delay away; a3 favours compact (well-connected) modules, which\n"
      "is exactly what the standard baseline optimizes -- so the baseline's\n"
      "area overhead shrinks in that regime.\n";
  return 0;
}
