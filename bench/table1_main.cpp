// Table 1 reproduction (paper section 5.1).
//
// For each of the six ISCAS85 circuits: run the evolution-based partitioning
// until convergence, then the standard partitioning at the same module
// sizes, and report module count, BIC sensor areas, the standard method's
// area overhead, and the delay / test-application overheads of both.
//
// The bench is incremental: pass a cache directory as argv[1] (or set
// IDDQ_CACHE_DIR) and every (circuit, method, seed, budget) point is served
// from the content-addressed result cache when it was computed before —
// a repeated run completes in seconds with identical numbers.
//
// `--service N` drives the same workload through the core::JobService
// path instead (one job per circuit, N workers, rows streamed) — the
// exact dispatch the batch server uses. Seeds there follow the job
// convention (per-method derived from the job's base seed), so the
// numbers are a deterministic job-path variant of the direct run, not a
// byte-for-byte replay of it.
//
// `--threads N` evaluates each run's ES descendants on a shared N-thread
// ExecutorPool — rows are byte-identical for any N, only the wall clock
// changes. `--json FILE` additionally emits the machine-readable rows and
// wall-clock times (convention: BENCH_table1.json in the repo root) so
// the perf trajectory is tracked across PRs.
//
// `--coverage` additionally grades every partition by measured IDDQ fault
// coverage (docs/coverage.md: mixed fault model, 128 patterns, set-cover
// minimized) and appends cov/pattern columns. Coverage columns and JSON
// fields appear ONLY with the flag, so the committed BENCH_table1.json
// stays comparable across PRs that don't opt in.
//
// `--pareto` (requires --coverage) appends each circuit's non-dominated
// (relative sensor-area overhead, measured fault coverage) method points —
// the trade-off view of the same rows (src/report/pareto.hpp).
//
// `--tier big` swaps the six Table-1 stand-ins for the large-circuit
// ladder (big_dag10k / big_dag30k / big_dag100k / ila64x32 / mult64,
// ~10k-100k gates) that the scaling work is measured on. The paper
// columns disappear — the 1995 paper has no numbers at these sizes —
// and the JSON gains a "tier" field (only when non-default, so existing
// BENCH_table1.json baselines stay comparable). `--only NAME` restricts
// any tier to one circuit; the CI big-smoke leg uses it to sweep just
// big_dag10k against a committed golden.
//
// Paper-reported reference values (where the 1995 scan is legible):
//   #modules:            2 / 3 / 4 / 6 / 5 / 6
//   std-vs-evo area:     +30.6% / +14.5% / +22.9% / +25.3% / +25.9% / +19.7%
//   delay overhead:      5.95E-2 vs 5.94E-2 (one circuit legible; both
//                        methods essentially identical)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/flow_engine.hpp"
#include "core/job_service.hpp"
#include "core/result_cache.hpp"
#include "library/cell_library.hpp"
#include "netlist/circuit_loader.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/pareto.hpp"
#include "report/table.hpp"
#include "support/executor.hpp"
#include "support/json.hpp"

int main(int argc, char** argv) {
  using namespace iddq;
  const char* cache_dir = std::getenv("IDDQ_CACHE_DIR");
  std::size_t service_workers = 0;  // 0 = direct FlowEngine path
  std::size_t threads = support::ExecutorPool::env_threads();
  std::optional<std::string> json_path;
  bool coverage = false;
  bool pareto = false;
  std::string tier = "table1";
  std::optional<std::string> only;
  const auto usage = [] {
    std::cerr << "usage: bench_table1 [cache-dir] [--service N] "
                 "[--threads N] [--json FILE] [--coverage] [--pareto] "
                 "[--tier table1|big] [--only CIRCUIT]\n";
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--service") == 0) {
      const long workers = i + 1 < argc ? std::atol(argv[++i]) : 0;
      if (workers <= 0) {
        std::cerr << "bench_table1: --service needs a worker count >= 1\n";
        usage();
        return 1;
      }
      service_workers = static_cast<std::size_t>(workers);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const long n = i + 1 < argc ? std::atol(argv[++i]) : 0;
      if (n <= 0) {
        std::cerr << "bench_table1: --threads needs a count >= 1\n";
        usage();
        return 1;
      }
      threads = static_cast<std::size_t>(n);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "bench_table1: --json needs a file path\n";
        usage();
        return 1;
      }
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--coverage") == 0) {
      coverage = true;
    } else if (std::strcmp(argv[i], "--pareto") == 0) {
      pareto = true;
    } else if (std::strcmp(argv[i], "--tier") == 0) {
      const char* name = i + 1 < argc ? argv[++i] : "";
      if (std::strcmp(name, "table1") != 0 && std::strcmp(name, "big") != 0) {
        std::cerr << "bench_table1: --tier must be 'table1' or 'big'\n";
        usage();
        return 1;
      }
      tier = name;
    } else if (std::strcmp(argv[i], "--only") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "bench_table1: --only needs a circuit name\n";
        usage();
        return 1;
      }
      only = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::cerr << "bench_table1: unknown option '" << argv[i] << "'\n";
      usage();
      return 1;
    } else {
      cache_dir = argv[i];
    }
  }
  if (pareto && !coverage) {
    std::cerr << "bench_table1: --pareto needs --coverage (its coverage "
                 "axis comes from fault grading)\n";
    usage();
    return 1;
  }
  const bool big_tier = tier == "big";
  if (big_tier) {
    std::cout << "=== BIG tier: evolution-based vs standard partitioning "
                 "at 10k-100k gates ===\n";
    std::cout << "(scaling ladder from the in-tree generators; no paper "
                 "reference at these sizes)\n\n";
  } else {
    std::cout
        << "=== Table 1: evolution-based vs standard partitioning ===\n";
    std::cout << "(paper: Wunderlich et al., ED&TC 1995, section 5.1)\n\n";
  }

  // The sweep's circuit list. Table-1 circuits are the statistical ISCAS85
  // stand-ins from make_iscas_like; the BIG ladder names are loader
  // builtins (netlist::load_circuit) so the bench measures exactly what
  // `iddqsyn big_dag10k` would run.
  std::vector<std::string> circuit_names;
  std::vector<std::size_t> paper_idx;  // index into the paper_* arrays
  if (big_tier) {
    circuit_names = {"big_dag10k", "big_dag30k", "big_dag100k", "ila64x32",
                     "mult64"};
  } else {
    for (const auto name : netlist::gen::table1_circuit_names())
      circuit_names.emplace_back(name);
  }
  for (std::size_t i = 0; i < circuit_names.size(); ++i) paper_idx.push_back(i);
  if (only) {
    std::vector<std::string> kept_names;
    std::vector<std::size_t> kept_idx;
    for (std::size_t i = 0; i < circuit_names.size(); ++i) {
      if (circuit_names[i] == *only) {
        kept_names.push_back(circuit_names[i]);
        kept_idx.push_back(paper_idx[i]);
      }
    }
    if (kept_names.empty()) {
      std::cerr << "bench_table1: --only '" << *only << "' matches no "
                << tier << "-tier circuit; tier sweeps:";
      for (const auto& name : circuit_names) std::cerr << ' ' << name;
      std::cerr << "\n";
      return 1;
    }
    circuit_names = std::move(kept_names);
    paper_idx = std::move(kept_idx);
  }
  const auto load_tier_circuit = [&](const std::string& name) {
    return big_tier ? netlist::load_circuit(name)
                    : netlist::gen::make_iscas_like(name);
  };
  // Open the JSON sink up front: an unwritable path must fail before the
  // sweep (minutes uncached), not after it.
  std::optional<std::ofstream> json_out;
  if (json_path) {
    json_out.emplace(*json_path);
    if (!*json_out) {
      std::cerr << "bench_table1: cannot write " << *json_path << "\n";
      return 1;
    }
  }
  std::optional<core::ResultCache> cache;
  if (cache_dir != nullptr) {
    cache.emplace(cache_dir);
    std::cout << "(result cache: " << cache_dir << ", " << cache->size()
              << " entries loaded)\n\n";
  }
  if (service_workers > 0)
    std::cout << "(job-service path: " << service_workers
              << " workers, per-method derived seeds)\n\n";
  if (threads > 1)
    std::cout << "(intra-run parallelism: " << threads
              << " threads, byte-identical rows)\n\n";

  const auto library = lib::default_library();
  const double paper_overhead_pct[] = {30.6, 14.5, 22.9, 25.3, 25.9, 19.7};
  const std::size_t paper_modules[] = {2, 3, 4, 6, 5, 6};

  // Paper reference columns only exist on the table-1 tier; the 1995
  // paper reports nothing at BIG-ladder sizes.
  std::vector<std::string> headers =
      big_tier
          ? std::vector<std::string>{"circuit", "gates", "#mod", "area(evo)",
                                     "area(std)", "std ovh", "c2(evo)",
                                     "c2(std)", "c4(evo)", "c4(std)", "time"}
          : std::vector<std::string>{"circuit", "gates", "#mod",
                                     "#mod(paper)", "area(evo)", "area(std)",
                                     "std ovh", "ovh(paper)", "c2(evo)",
                                     "c2(std)", "c4(evo)", "c4(std)", "time"};
  if (coverage) {
    headers.insert(headers.end() - 1,
                   {"cov(evo)", "cov(std)", "pat(evo)", "pat(std)"});
    std::cout << "(fault-grade coverage: mixed model, 128 patterns, "
                 "set-cover minimized)\n\n";
  }
  report::TextTable table(headers);

  const auto cfg = bench::paper_flow_config();
  support::ExecutorPool pool(threads);
  core::FlowEngineConfig engine_config;
  engine_config.sensor = cfg.sensor;
  engine_config.weights = cfg.weights;
  engine_config.rho = cfg.rho;
  engine_config.optimizers.es = cfg.es;
  engine_config.pool = &pool;
  if (coverage) {
    engine_config.coverage.enabled = true;
    engine_config.coverage.fault_model = "mixed";
    engine_config.coverage.patterns = 128;
    engine_config.coverage.minimize = true;
  }
  if (cache) engine_config.cache = &*cache;

  // Job-service path: one job per circuit, all submitted up front, sharded
  // over the worker pool; rows come back through the same JobService the
  // batch server dispatches on. The loop below then waits in table order.
  std::optional<core::JobService> service;
  std::vector<core::JobHandle> handles;
  const auto sweep_start = std::chrono::steady_clock::now();
  if (service_workers > 0) {
    core::JobServiceConfig service_config;
    service_config.workers = service_workers;
    service_config.flow = engine_config;
    service.emplace(library, std::move(service_config));
    // Builtin table-1 circuits are statistical stand-ins produced by
    // make_iscas_like, not the CLI loader's builtins; BIG-ladder names
    // ARE loader builtins.
    service->set_circuit_loader(load_tier_circuit);
    for (const auto& name : circuit_names) {
      core::JobSpec spec;
      spec.circuit = name;
      spec.methods = {"evolution", "standard"};
      spec.base_seed = cfg.es.seed;
      handles.push_back(service->submit(std::move(spec)));
    }
  }

  struct JsonRow {
    std::string circuit;
    std::size_t gates = 0;
    core::MethodResult evolution;
    core::MethodResult standard;
    double overhead_pct = 0.0;
    double seconds = 0.0;
  };
  std::vector<JsonRow> json_rows;

  std::size_t idx = 0;
  for (const auto& name : circuit_names) {
    const auto t0 = std::chrono::steady_clock::now();

    core::MethodResult evolution;
    core::MethodResult standard;
    std::size_t gate_count = 0;
    if (service_workers > 0) {
      const core::JobResult& job = handles[idx].wait();
      if (!job.ok()) {
        std::cerr << "table1: " << name << ": " << job.error << "\n";
        return 1;
      }
      evolution = job.rows.at(0);
      standard = job.rows.at(1);
      gate_count = load_tier_circuit(name).logic_gate_count();
    } else {
      const auto nl = load_tier_circuit(name);
      gate_count = nl.logic_gate_count();
      // Same runs and seeds as core::run_flow, but through a cache-aware
      // engine: evolution first, then the standard baseline clustered at
      // the module sizes the ES discovered (paper section 5).
      core::FlowEngine engine(nl, library, engine_config);

      core::FlowEngine::RunOptions es_options;
      es_options.seed = cfg.es.seed;
      evolution = engine.run_method("evolution", es_options);

      core::FlowEngine::RunOptions std_options;
      std_options.seed = cfg.es.seed;
      std_options.start = &evolution.partition;
      standard = engine.run_method("standard", std_options);
    }

    const double seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() -
            (service_workers > 0 ? sweep_start : t0))
            .count();
    const double overhead_pct =
        evolution.sensor_area > 0.0
            ? (standard.sensor_area / evolution.sensor_area - 1.0) * 100.0
            : 0.0;

    if (json_out || pareto)
      json_rows.push_back(
          {name, gate_count, evolution, standard, overhead_pct, seconds});
    std::vector<std::string> cells{
        name,
        std::to_string(gate_count),
        std::to_string(evolution.module_count)};
    if (!big_tier)
      cells.push_back(std::to_string(paper_modules[paper_idx[idx]]));
    cells.push_back(report::format_eng(evolution.sensor_area));
    cells.push_back(report::format_eng(standard.sensor_area));
    cells.push_back(report::format_pct(overhead_pct, /*already_pct=*/true));
    if (!big_tier)
      cells.push_back(
          report::format_pct(paper_overhead_pct[paper_idx[idx]], true));
    cells.push_back(report::format_eng(evolution.delay_overhead));
    cells.push_back(report::format_eng(standard.delay_overhead));
    cells.push_back(report::format_eng(evolution.test_overhead));
    cells.push_back(report::format_eng(standard.test_overhead));
    if (coverage) {
      cells.push_back(
          report::format_pct(evolution.fault_coverage_pct, true));
      cells.push_back(report::format_pct(standard.fault_coverage_pct, true));
      cells.push_back(std::to_string(evolution.patterns_minimized) + "/" +
                      std::to_string(evolution.patterns_used));
      cells.push_back(std::to_string(standard.patterns_minimized) + "/" +
                      std::to_string(standard.patterns_used));
    }
    cells.push_back(report::format_fixed(seconds, 1) + "s");
    table.add_row(cells);
    ++idx;
  }
  table.print(std::cout);

  if (pareto) {
    // The method trade-off the table's columns imply, made explicit: per
    // circuit, which methods are worth their area. Overhead is relative
    // to the circuit's cheapest graded method, same as iddqsyn --pareto.
    std::cout << "\npareto frontier (area overhead vs measured coverage):\n";
    for (const auto& row : json_rows) {
      std::vector<report::ParetoPoint> points;
      const double min_area = std::min(row.evolution.sensor_area,
                                       row.standard.sensor_area);
      if (min_area <= 0.0) continue;
      for (const core::MethodResult* r : {&row.evolution, &row.standard})
        points.push_back({r->method,
                          (r->sensor_area / min_area - 1.0) * 100.0,
                          r->fault_coverage_pct});
      for (const std::size_t i : report::pareto_front(points))
        std::cout << "  " << row.circuit << ": pareto method="
                  << points[i].label << " area_ovh="
                  << report::format_pct(points[i].area_overhead_pct, true)
                  << " cov="
                  << report::format_pct(points[i].coverage_pct, true)
                  << "\n";
    }
  }

  const double total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  if (json_out) {
    // One object per run; a tracking script appends/compares them across
    // PRs. 17 significant digits round-trip doubles exactly, so the rows
    // double as a byte-identity witness for --threads sweeps.
    json::JsonWriter rows(json::JsonWriter::Kind::Array);
    for (const auto& row : json_rows) {
      json::JsonWriter r;
      r.field("circuit", row.circuit)
          .field("gates", static_cast<std::uint64_t>(row.gates))
          .field("modules",
                 static_cast<std::uint64_t>(row.evolution.module_count))
          .field("sensor_area_evolution", row.evolution.sensor_area)
          .field("sensor_area_standard", row.standard.sensor_area)
          .field("std_area_overhead_pct", row.overhead_pct)
          .field("delay_overhead_evolution", row.evolution.delay_overhead)
          .field("delay_overhead_standard", row.standard.delay_overhead)
          .field("test_overhead_evolution", row.evolution.test_overhead)
          .field("test_overhead_standard", row.standard.test_overhead)
          .field("cost_evolution", row.evolution.fitness.cost)
          .field("evaluations",
                 static_cast<std::uint64_t>(row.evolution.evaluations))
          .field("seconds", row.seconds);
      // Coverage fields only with --coverage: the committed
      // BENCH_table1.json must stay drift-free for default runs.
      if (coverage) {
        r.field("fault_coverage_pct_evolution",
                row.evolution.fault_coverage_pct)
            .field("fault_coverage_pct_standard",
                   row.standard.fault_coverage_pct)
            .field("faults_total",
                   static_cast<std::uint64_t>(row.evolution.faults_total))
            .field("patterns_minimized_evolution",
                   static_cast<std::uint64_t>(
                       row.evolution.patterns_minimized))
            .field("patterns_minimized_standard",
                   static_cast<std::uint64_t>(
                       row.standard.patterns_minimized));
      }
      rows.element_raw(std::move(r).str());
    }
    const char* fast = std::getenv("IDDQSYN_BENCH_FAST");
    json::JsonWriter doc;
    doc.field("bench", "table1");
    // Only emitted off the default tier so pre-tier BENCH_table1.json
    // baselines stay comparable (bench_compare: absent == "table1").
    if (big_tier) doc.field("tier", tier);
    doc.field("fast", fast != nullptr && std::string(fast) == "1")
        // Row "seconds" semantics differ per mode — only compare files
        // with matching seconds_kind (and fast/threads) across PRs.
        .field("seconds_kind", service_workers > 0
                                   ? "sweep_offset"   // overlapping jobs
                                   : "per_circuit")   // true per-run time
        .field("threads", static_cast<std::uint64_t>(threads));
    // Only emitted when grading: keeps default-run docs byte-compatible
    // with pre-coverage baselines (bench_compare treats the absent field
    // and a default run as the same population).
    if (coverage) doc.field("coverage", true);
    doc.field("service_workers",
               static_cast<std::uint64_t>(service_workers))
        .field("cached", cache.has_value())
        .field("total_seconds", total_seconds)
        .field_raw("rows", std::move(rows).str());
    *json_out << std::move(doc).str() << "\n";
    json_out->flush();
    if (!*json_out) {
      std::cerr << "bench_table1: write to " << *json_path << " failed\n";
      return 1;
    }
    std::cout << "\n(json rows written to " << *json_path << ")\n";
  }

  if (cache)
    std::cout << "\ncache: " << cache->hits() << " hits, " << cache->misses()
              << " misses (" << cache->size() << " entries)\n";

  if (big_tier) {
    std::cout <<
        "\nnotes:\n"
        "  * ladder circuits are deterministic generator builtins\n"
        "    (big_dag<N>k: NAND-heavy random DAGs, ila64x32: AND/EXOR\n"
        "    iterative logic array, mult64: 64x64 NOR-cell array\n"
        "    multiplier); `iddqsyn <name>` runs the identical netlists.\n"
        "  * rows are byte-identical at any --threads, same as table1;\n"
        "    the committed BENCH_big.json is the drift gate.\n";
    return 0;
  }
  std::cout <<
      "\nnotes:\n"
      "  * circuits are statistical ISCAS85 stand-ins (c6288: real 16x16\n"
      "    array multiplier); see DESIGN.md section 2 for the substitution.\n"
      "  * c6288 shows ~0% area gap: on a homogeneous NOR array the\n"
      "    pessimistic current estimator makes the sensor-area sum\n"
      "    provably partition-invariant (EXPERIMENTS.md discusses this\n"
      "    deviation from the paper's 25.9%).\n"
      "  * delay (c2) and test-time (c4) overheads are method-independent,\n"
      "    matching the paper's observation that standard partitioning\n"
      "    shows no performance advantage.\n";
  return 0;
}
