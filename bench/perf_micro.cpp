// Micro-benchmarks of the flow's kernels (google-benchmark).
//
// The paper reports "convergence within a few hours on a Sun SPARC" for the
// largest circuit; the incremental-evaluation design is what makes the
// optimization tractable. These benchmarks pin the per-operation costs:
// evaluator construction, incremental move + fitness, boundary computation,
// distance-oracle construction, transition-time analysis, and the logic
// simulator's pattern throughput.
#include <benchmark/benchmark.h>

#include <array>
#include <vector>

#include "core/evolution.hpp"
#include "core/neighborhood.hpp"
#include "core/start_partition.hpp"
#include "core/tabu.hpp"
#include "electrical/delay_model.hpp"
#include "estimators/current_profile.hpp"
#include "estimators/delay_estimator.hpp"
#include "estimators/incremental_timing.hpp"
#include "estimators/transition_times.hpp"
#include "library/cell_library.hpp"
#include "netlist/circuit_loader.hpp"
#include "netlist/distance_oracle.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "partition/evaluator.hpp"
#include "sim/logic_sim.hpp"
#include "sim/patterns.hpp"
#include "support/executor.hpp"

namespace {

using namespace iddq;

const netlist::Netlist& circuit() {
  static const netlist::Netlist nl = netlist::gen::make_iscas_like("c7552");
  return nl;
}

const lib::CellLibrary& library() {
  static const lib::CellLibrary lib = lib::default_library();
  return lib;
}

const part::EvalContext& context() {
  static const part::EvalContext ctx(circuit(), library(),
                                     elec::SensorSpec{}, part::CostWeights{});
  return ctx;
}

// Size ladder for the scaling benches (Arg = index): per-move costs must
// stop scaling with total gate count now that the refresh is incremental.
// Indices 4-5 are BIG-tier loader builtins (~10k / ~30k gates).
constexpr std::array<const char*, 6> kSizeLadder = {
    "c1908", "c3540", "c5315", "c7552", "big_dag10k", "big_dag30k"};

const part::EvalContext& context_at(std::size_t idx) {
  static std::array<const netlist::Netlist*, kSizeLadder.size()> nls{};
  static std::array<const part::EvalContext*, kSizeLadder.size()> ctxs{};
  if (ctxs[idx] == nullptr) {
    // load_circuit serves both families: c-names map to make_iscas_like,
    // BIG-ladder names to their generators.
    nls[idx] = new netlist::Netlist(netlist::load_circuit(kSizeLadder[idx]));
    ctxs[idx] = new part::EvalContext(*nls[idx], library(),
                                     elec::SensorSpec{}, part::CostWeights{});
  }
  return *ctxs[idx];
}

void BM_EvalContextConstruction(benchmark::State& state) {
  for (auto _ : state) {
    const part::EvalContext ctx(circuit(), library(), elec::SensorSpec{},
                                part::CostWeights{});
    benchmark::DoNotOptimize(ctx.d_nominal_ps);
  }
}
BENCHMARK(BM_EvalContextConstruction)->Unit(benchmark::kMillisecond);

void BM_EvaluatorFullBuild(benchmark::State& state) {
  const auto& ctx = context();
  Rng rng(1);
  const auto p = core::make_start_partition(circuit(), 6, rng);
  for (auto _ : state) {
    part::PartitionEvaluator eval(ctx, p);
    benchmark::DoNotOptimize(eval.violation());
  }
}
BENCHMARK(BM_EvaluatorFullBuild)->Unit(benchmark::kMillisecond);

void BM_IncrementalMoveAndFitness(benchmark::State& state) {
  const auto& ctx = context();
  Rng rng(2);
  part::PartitionEvaluator eval(
      ctx, core::make_start_partition(circuit(), 6, rng));
  const auto logic = circuit().logic_gates();
  std::size_t i = 0;
  for (auto _ : state) {
    const netlist::GateId g = logic[i++ % logic.size()];
    const auto target = static_cast<std::uint32_t>(
        i % eval.partition().module_count());
    eval.move_gate(g, target);
    benchmark::DoNotOptimize(eval.fitness());
  }
}
BENCHMARK(BM_IncrementalMoveAndFitness)->Unit(benchmark::kMicrosecond);

// Steady-state cost of one committed move + fitness query at each circuit
// size (Arg indexes kSizeLadder). With the incremental refresh the cost
// tracks the touched modules and the affected timing cone, not the gate
// count — compare the per-iteration times down the ladder against
// BM_IncrementalMoveAndFitness's historical full-pass behaviour.
void BM_FitnessAfterMove(benchmark::State& state) {
  const auto& ctx = context_at(static_cast<std::size_t>(state.range(0)));
  Rng rng(12);
  // Fixed module SIZE (not count): the touched-module work stays constant
  // down the ladder, so any residual scaling exposes a global term.
  const std::size_t k =
      std::max<std::size_t>(2, ctx.nl.logic_gate_count() / 160);
  part::PartitionEvaluator eval(ctx,
                                core::make_start_partition(ctx.nl, k, rng));
  benchmark::DoNotOptimize(eval.fitness());
  std::size_t i = 0;
  const auto logic = ctx.nl.logic_gates();
  for (auto _ : state) {
    netlist::GateId g = logic[i++ % logic.size()];
    while (eval.partition().module_size(eval.partition().module_of(g)) <= 1)
      g = logic[i++ % logic.size()];
    const std::uint32_t src = eval.partition().module_of(g);
    const auto count =
        static_cast<std::uint32_t>(eval.partition().module_count());
    const auto target = static_cast<std::uint32_t>(
        (src + 1 + i % (count - 1)) % count);
    eval.move_gate(g, target);
    benchmark::DoNotOptimize(eval.fitness());
  }
}
BENCHMARK(BM_FitnessAfterMove)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMicrosecond);

// probe_move vs the copy + move_gate + fitness recipe it replaces, against
// the same round-start state (what one tabu candidate costs).
void BM_ProbeVsCopy(benchmark::State& state) {
  const auto& ctx = context_at(static_cast<std::size_t>(state.range(0)));
  Rng rng(13);
  // Fine-grained regime (many small modules): seeds stay under the dense
  // cutover, so probes ride the journaled sweep — the case the probe API
  // targets. Coarse Table-1-style partitions fall back to the scratch
  // full pass and score on par with a copy minus the memcpy.
  const std::size_t k =
      std::max<std::size_t>(2, ctx.nl.logic_gate_count() / 48);
  part::PartitionEvaluator eval(ctx,
                                core::make_start_partition(ctx.nl, k, rng));
  benchmark::DoNotOptimize(eval.fitness());
  const bool use_probe = state.range(1) != 0;
  std::size_t i = 0;
  const auto logic = ctx.nl.logic_gates();
  for (auto _ : state) {
    core::GateMove mv;
    do {
      mv.gate = logic[i++ % logic.size()];
      mv.target = static_cast<std::uint32_t>(
          i % eval.partition().module_count());
    } while (
        eval.partition().module_of(mv.gate) == mv.target ||
        eval.partition().module_size(eval.partition().module_of(mv.gate)) <=
            1);
    if (use_probe) {
      benchmark::DoNotOptimize(eval.probe_move(mv.gate, mv.target));
    } else {
      part::PartitionEvaluator copy = eval;
      copy.move_gate(mv.gate, mv.target);
      benchmark::DoNotOptimize(copy.fitness());
    }
  }
}
BENCHMARK(BM_ProbeVsCopy)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {0, 1}})  // {circuit, 0=copy/1=probe}
    ->Unit(benchmark::kMicrosecond);

// One perturbed gate: incremental repropagation vs the full O(V+E) pass.
void BM_IncrementalVsFullTiming(benchmark::State& state) {
  const auto& ctx = context_at(static_cast<std::size_t>(state.range(0)));
  const bool incremental = state.range(1) != 0;
  std::vector<double> delta(ctx.nl.gate_count(), 1.0);
  Rng rng(14);
  for (const netlist::GateId id : ctx.nl.logic_gates())
    delta[id] = 1.0 + rng.uniform() * 0.1;
  const auto factor = [&delta](netlist::GateId g) { return delta[g]; };
  est::IncrementalTiming timing(ctx.timing_graph);
  timing.rebuild(factor);
  const auto logic = ctx.nl.logic_gates();
  std::size_t i = 0;
  for (auto _ : state) {
    const netlist::GateId g = logic[i++ % logic.size()];
    delta[g] = 1.0 + (delta[g] - 1.0) * 0.999;  // small drift
    const netlist::GateId changed[] = {g};
    if (incremental) {
      benchmark::DoNotOptimize(timing.propagate(changed, factor));
    } else {
      benchmark::DoNotOptimize(
          est::degraded_critical_path_ps(ctx.nl, ctx.cells, delta));
    }
  }
}
BENCHMARK(BM_IncrementalVsFullTiming)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})  // {circuit, 0=full / 1=incr}
    ->Unit(benchmark::kMicrosecond);

void BM_EvaluatorCopy(benchmark::State& state) {
  const auto& ctx = context();
  Rng rng(3);
  const part::PartitionEvaluator eval(
      ctx, core::make_start_partition(circuit(), 6, rng));
  for (auto _ : state) {
    part::PartitionEvaluator copy = eval;
    benchmark::DoNotOptimize(copy.partition().module_count());
  }
}
BENCHMARK(BM_EvaluatorCopy)->Unit(benchmark::kMicrosecond);

void BM_BoundaryGates(benchmark::State& state) {
  const auto& ctx = context();
  Rng rng(4);
  const part::PartitionEvaluator eval(
      ctx, core::make_start_partition(circuit(), 6, rng));
  std::uint32_t m = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::EvolutionEngine::boundary_gates(eval, m));
    m = (m + 1) % eval.partition().module_count();
  }
}
BENCHMARK(BM_BoundaryGates)->Unit(benchmark::kMicrosecond);

void BM_TransitionTimes(benchmark::State& state) {
  const auto cells = lib::bind_cells(circuit(), library());
  for (auto _ : state) {
    const est::TransitionTimes tt(circuit(), cells, 45.0);
    benchmark::DoNotOptimize(tt.grid_size());
  }
}
BENCHMARK(BM_TransitionTimes)->Unit(benchmark::kMillisecond);

void BM_DistanceOracle(benchmark::State& state) {
  for (auto _ : state) {
    const netlist::DistanceOracle oracle(circuit(), 4);
    benchmark::DoNotOptimize(oracle.entry_count());
  }
}
BENCHMARK(BM_DistanceOracle)->Unit(benchmark::kMillisecond);

// Ladder for the profile-max benches: Table-1 sizes plus the full BIG
// tier (the grid grows with circuit depth, so big_dag100k has the widest
// time grid in the repo). Only needs TransitionTimes, so 100k is cheap
// to set up even though a full EvalContext would not be.
constexpr std::array<const char*, 5> kProfileLadder = {
    "c1908", "c7552", "big_dag10k", "big_dag30k", "big_dag100k"};

struct ProfileFixture {
  netlist::Netlist nl;
  std::vector<lib::CellParams> cells;
  est::TransitionTimes tt;
  est::ModuleCurrentProfile profile;
  std::vector<netlist::GateId> members;  // gates inside the profiled module

  explicit ProfileFixture(const char* name)
      : nl(netlist::load_circuit(name)),
        cells(lib::bind_cells(nl, library())),
        tt(nl, cells, 45.0),
        profile(tt.grid_size()) {
    // A plausible module: every 8th logic gate, i.e. the n/8-gate module
    // a K=8 partition would hold.
    const auto logic = nl.logic_gates();
    for (std::size_t i = 0; i < logic.size(); i += 8)
      members.push_back(logic[i]);
    for (const netlist::GateId g : members)
      profile.add_gate(tt.at(g), cells[g].ipeak_ua);
  }
};

ProfileFixture& profile_at(std::size_t idx) {
  static std::array<ProfileFixture*, kProfileLadder.size()> fixtures{};
  if (fixtures[idx] == nullptr)
    fixtures[idx] = new ProfileFixture(kProfileLadder[idx]);
  return *fixtures[idx];
}

// One overlay probe ("what would the module maxima be with gate g added")
// — the inner question of every tabu candidate and ES descendant. The
// tree path touches O(|T(g)| log grid) nodes; the scan path is the old
// O(grid) full pass kept as `scan_max_with_gate_added`. Down the ladder
// the tree time should stay flat while the scan time tracks the grid.
void BM_ProfileOverlayProbe(benchmark::State& state) {
  auto& f = profile_at(static_cast<std::size_t>(state.range(0)));
  const bool tree = state.range(1) != 0;
  const auto logic = f.nl.logic_gates();
  std::size_t i = 0;
  for (auto _ : state) {
    const netlist::GateId g = logic[i++ % logic.size()];
    if (tree) {
      benchmark::DoNotOptimize(
          f.profile.max_with_gate_added(f.tt.at(g), f.cells[g].ipeak_ua));
    } else {
      benchmark::DoNotOptimize(f.profile.scan_max_with_gate_added(
          f.tt.at(g), f.cells[g].ipeak_ua));
    }
  }
}
BENCHMARK(BM_ProfileOverlayProbe)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})  // {circuit, 0=scan / 1=tree}
    ->Unit(benchmark::kMicrosecond);

// A committed move's profile work: remove one gate, add another, read the
// new maxima. The tree pays leaf updates plus one lazy O(grid) rebuild at
// the query; the scan path pays the same leaf updates plus the two full
// O(grid) max scans the old refresh ran. Same asymptotics, so this bench
// pins that the lazy tree costs nothing extra on the commit path.
void BM_ProfileCommitAndMax(benchmark::State& state) {
  auto& f = profile_at(static_cast<std::size_t>(state.range(0)));
  const bool tree = state.range(1) != 0;
  const auto logic = f.nl.logic_gates();
  std::size_t i = 0;
  for (auto _ : state) {
    const netlist::GateId out = f.members[i % f.members.size()];
    const netlist::GateId in = logic[i++ % logic.size()];
    f.profile.remove_gate(f.tt.at(out), f.cells[out].ipeak_ua);
    f.profile.add_gate(f.tt.at(in), f.cells[in].ipeak_ua);
    if (tree) {
      benchmark::DoNotOptimize(f.profile.max_current_ua());
      benchmark::DoNotOptimize(f.profile.max_switching());
    } else {
      benchmark::DoNotOptimize(f.profile.scan_max_current_ua());
      benchmark::DoNotOptimize(f.profile.scan_max_switching());
    }
    f.profile.remove_gate(f.tt.at(in), f.cells[in].ipeak_ua);
    f.profile.add_gate(f.tt.at(out), f.cells[out].ipeak_ua);
  }
}
BENCHMARK(BM_ProfileCommitAndMax)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})  // {circuit, 0=scan / 1=tree}
    ->Unit(benchmark::kMicrosecond);

// Closed-form 50%-crossing vs the historical 100-iteration bisection it
// replaced (both still bit-identical, pinned by the electrical tests).
void BM_DelayAnchorClosedVsBisect(benchmark::State& state) {
  const bool closed = state.range(0) != 0;
  elec::DelayModelInput in;
  in.rs_kohm = 0.02;
  in.cs_ff = 2000.0;
  in.cg_ff = 15.0;
  in.rg_kohm = 25.0;
  in.n = 50;
  for (auto _ : state) {
    if (closed) {
      benchmark::DoNotOptimize(elec::DelayDegradationModel::t50_ps(in));
    } else {
      benchmark::DoNotOptimize(
          elec::DelayDegradationModel::t50_ps_bisect(in));
    }
    in.n = (in.n % 200) + 1;
  }
}
BENCHMARK(BM_DelayAnchorClosedVsBisect)->Arg(0)->Arg(1);

void BM_DelayModelSolve(benchmark::State& state) {
  elec::DelayModelInput in;
  in.rs_kohm = 0.02;
  in.cs_ff = 2000.0;
  in.cg_ff = 15.0;
  in.rg_kohm = 25.0;
  in.n = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(elec::DelayDegradationModel::delta(in));
    in.n = (in.n % 200) + 1;
  }
}
BENCHMARK(BM_DelayModelSolve);

void BM_LogicSim64Patterns(benchmark::State& state) {
  const sim::LogicSim simulator(circuit());
  Rng rng(5);
  const auto batches = sim::random_patterns(circuit(), 64, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(simulator.run(batches[0].words));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_LogicSim64Patterns)->Unit(benchmark::kMicrosecond);

void BM_EvolutionGeneration(benchmark::State& state) {
  const auto& ctx = context();
  core::EsParams params;
  params.mu = 8;
  params.lambda = 7;
  params.chi = 2;
  params.max_generations = 1;
  params.stall_generations = 1;
  params.seed = 7;
  for (auto _ : state) {
    core::EvolutionEngine engine(ctx, params);
    benchmark::DoNotOptimize(engine.run_with_module_count(6));
  }
}
BENCHMARK(BM_EvolutionGeneration)->Unit(benchmark::kMillisecond);

// Thread-count scaling of the ES inner loop (the row the ISSUE's speedup
// criterion reads): same seed, same trajectory, only the wall clock moves.
// Arg = ExecutorPool size (1 = serial baseline).
void BM_EvolutionGenerationThreads(benchmark::State& state) {
  const auto& ctx = context();
  support::ExecutorPool pool(static_cast<std::size_t>(state.range(0)));
  core::EsParams params;
  params.mu = 8;
  params.lambda = 7;
  params.chi = 2;
  params.max_generations = 2;
  params.stall_generations = 2;
  params.seed = 7;
  params.pool = &pool;
  for (auto _ : state) {
    core::EvolutionEngine engine(ctx, params);
    benchmark::DoNotOptimize(engine.run_with_module_count(6));
  }
}
BENCHMARK(BM_EvolutionGenerationThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Thread-count scaling of the tabu candidate evaluation.
void BM_TabuRoundsThreads(benchmark::State& state) {
  const auto& ctx = context();
  support::ExecutorPool pool(static_cast<std::size_t>(state.range(0)));
  Rng rng(6);
  const auto start = core::make_start_partition(circuit(), 6, rng);
  core::TabuParams params;
  params.iterations = 8;
  params.candidates = 16;
  params.stall_iterations = 8;
  params.seed = 9;
  params.pool = &pool;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::tabu_search(ctx, start, params));
}
BENCHMARK(BM_TabuRoundsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
