// Extension bench: IDDQ-aware resynthesis (the paper's stated next step).
//
// "Next step is controlling the logic synthesis procedure such that the
// presented cost function is considered at the early beginning."
//
// The wave-retiming pass (core/resynth.hpp) desynchronizes simultaneous
// switching by buffering slack paths, shrinking the peak transient current
// *before* partitioning. This bench runs the full flow on the original and
// the retimed circuit and compares: circuit peak, partition sensor area,
// buffer overhead, and critical-path delay.
#include <iostream>

#include "bench/common.hpp"
#include "core/resynth.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  std::cout << "=== Extension: wave-retiming resynthesis before partitioning ===\n\n";

  const auto library = lib::default_library();
  report::TextTable table({"circuit", "variant", "sum module peaks [mA]",
                           "sensor area", "buffers", "delay [ns]",
                           "area saved"});

  for (const auto name : {"c1908", "c2670"}) {
    const auto nl = netlist::gen::make_iscas_like(name);

    // Step 1: partition the original circuit (the paper's flow).
    auto cfg = bench::paper_flow_config();
    cfg.es.max_generations = 150;
    const auto base = core::run_flow(nl, library, cfg);

    // Step 2: partition-aware wave retiming against that partition.
    std::vector<std::vector<netlist::GateId>> groups(
        base.evolution.partition.module_count());
    for (std::uint32_t m = 0; m < groups.size(); ++m) {
      const auto gates = base.evolution.partition.module(m);
      groups[m].assign(gates.begin(), gates.end());
    }
    core::ResynthOptions opts;
    opts.max_retimed_gates = 150;
    opts.target_peak_reduction = 0.5;
    const auto retimed =
        core::retime_for_iddq_partitioned(nl, library, groups, opts);

    // Step 3: evaluate the retimed circuit under the extended partition.
    const part::EvalContext ctx(retimed.netlist, library, cfg.sensor,
                                cfg.weights, cfg.rho);
    const auto improved = core::evaluate_method(
        ctx, "retimed",
        part::Partition::from_groups(retimed.netlist, retimed.groups));

    const double saved_pct =
        (1.0 - improved.sensor_area / base.evolution.sensor_area) * 100.0;
    table.add_row(
        {std::string(name), "original",
         report::format_fixed(retimed.sum_peak_before_ua / 1000.0, 1),
         report::format_eng(base.evolution.sensor_area), "0",
         report::format_fixed(retimed.delay_before_ps / 1000.0, 2), "--"});
    table.add_row(
        {std::string(name), "retimed",
         report::format_fixed(retimed.sum_peak_after_ua / 1000.0, 1),
         report::format_eng(improved.sensor_area),
         std::to_string(retimed.buffers_added),
         report::format_fixed(retimed.delay_after_ps / 1000.0, 2),
         report::format_pct(saved_pct, true)});
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: retiming against the *partition's* per-module peaks (the\n"
      "quantity the area model charges) shrinks the sized-to-peak bypass\n"
      "switches at zero critical-path cost (delay_margin = 0) -- the\n"
      "cost-driven synthesis coupling the paper's conclusion proposes.\n"
      "A global-peak-only retiming (retime_for_iddq) does NOT transfer:\n"
      "the evolution strategy has already flattened each module's share.\n";
  return 0;
}
