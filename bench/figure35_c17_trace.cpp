// Figures 3-5 reproduction: the evolution strategy worked on C17.
//
// The paper walks C17 through start-partition construction (figure 3/4) and
// three mutation generations ending in the optimum partition
// Pi_f = {(g1,g3,g5), (g2,g4,g6)} = {(10,16,22), (11,19,23)} (figure 5).
// This bench regenerates the walk: chain-clustered start partitions, the ES
// trace, the reached optimum, and an exhaustive enumeration of every
// two-module partition confirming global optimality under the cost model.
#include <iostream>
#include <limits>

#include "core/evolution.hpp"
#include "core/start_partition.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/c17.hpp"
#include "partition/evaluator.hpp"
#include "report/table.hpp"

namespace {

using namespace iddq;

std::string describe(const netlist::Netlist& nl, const part::Partition& p) {
  std::string out;
  for (std::uint32_t m = 0; m < p.module_count(); ++m) {
    out += "(";
    const auto gates = p.module(m);
    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (i != 0) out += ",";
      out += nl.gate(gates[i]).name;
    }
    out += ")";
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Figures 3-5: evolution strategy on C17 ===\n\n";
  const auto nl = netlist::gen::make_c17();
  const auto library = lib::default_library();
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});

  // Start partitions (figure 3's chain clustering), K = 2 and K = 3.
  Rng rng(7);
  for (const std::size_t k : {2u, 3u}) {
    const auto start = core::make_start_partition(nl, k, rng);
    part::PartitionEvaluator eval(ctx, start);
    std::cout << "start partition (K=" << k << "): " << describe(nl, start)
              << "   cost " << report::format_fixed(eval.fitness().cost, 2)
              << "\n";
  }

  // Evolution run with trace (figures 4-5's generations).
  core::EsParams params;
  params.mu = 4;
  params.lambda = 6;
  params.chi = 2;
  params.max_generations = 40;
  params.stall_generations = 40;
  params.record_trace = true;
  params.seed = 3;
  core::EvolutionEngine engine(ctx, params);
  const auto result = engine.run_with_module_count(2);

  std::cout << "\nES trace (best cost per generation):\n";
  report::TextTable trace({"gen", "best cost", "K", "step width m"});
  for (const auto& g : result.trace) {
    if (g.generation % 5 != 1 && g.generation != result.trace.size()) continue;
    trace.add_row({std::to_string(g.generation),
                   report::format_fixed(g.best.cost, 3),
                   std::to_string(g.module_count),
                   std::to_string(g.best_step_width)});
  }
  trace.print(std::cout);

  std::cout << "\nES result: " << describe(nl, result.best_partition)
            << "   cost "
            << report::format_fixed(result.best_fitness.cost, 3) << " ("
            << result.evaluations << " evaluations)\n";

  // Exhaustive enumeration of all two-module partitions.
  const auto logic = nl.logic_gates();
  double best_cost = std::numeric_limits<double>::infinity();
  part::Partition best(1, 1);
  std::size_t enumerated = 0;
  for (std::uint32_t mask = 1; mask + 1 < (1u << logic.size()); ++mask) {
    if (mask & 1u) continue;  // fix gate 0's module: labels are symmetric
    std::vector<std::vector<netlist::GateId>> groups(2);
    for (std::size_t i = 0; i < logic.size(); ++i)
      groups[(mask >> i) & 1u].push_back(logic[i]);
    part::PartitionEvaluator eval(ctx,
                                  part::Partition::from_groups(nl, groups));
    ++enumerated;
    const auto f = eval.fitness();
    if (f.feasible() && f.cost < best_cost) {
      best_cost = f.cost;
      best = eval.partition();
    }
  }
  std::cout << "\nexhaustive check over " << enumerated
            << " two-module partitions: optimum " << describe(nl, best)
            << "   cost " << report::format_fixed(best_cost, 3) << "\n";

  // The paper's optimum under its 1995 cost calibration.
  part::PartitionEvaluator paper(
      ctx, part::Partition::from_groups(
               nl, std::vector<std::vector<netlist::GateId>>{
                       {nl.at("10"), nl.at("16"), nl.at("22")},
                       {nl.at("11"), nl.at("19"), nl.at("23")}}));
  const double paper_cost = paper.fitness().cost;
  std::cout << "paper's Pi_f {(10,16,22),(11,19,23)}: cost "
            << report::format_fixed(paper_cost, 3) << "\n\n";

  const double gap_to_optimum =
      (result.best_fitness.cost - best_cost) / best_cost * 100.0;
  if (gap_to_optimum <= 1e-7) {
    std::cout << "ES reaches the exhaustive two-module optimum: YES\n";
  } else if (std::abs(result.best_fitness.cost - paper_cost) <
             1e-9 * paper_cost) {
    std::cout << "ES converged to the paper's published optimum Pi_f, which "
                 "ranks\n"
              << report::format_fixed(gap_to_optimum, 2)
              << "% above this cost model's exhaustive optimum (the 1995\n"
                 "calibration differs slightly from ours; see "
                 "EXPERIMENTS.md).\n";
  } else {
    std::cout << "ES stalled " << report::format_fixed(gap_to_optimum, 2)
              << "% above the exhaustive optimum.\n";
  }
  return 0;
}
