// Figure 2 reproduction: the impact of group *shape* on BIC sensor area.
//
// The paper's figure shows a 2-D array CUT with three cell types C1, C2, C3
// and two partitions: partition 1 groups cells along the signal flow (the
// chained cells "will not switch in parallel"), partition 2 groups cells
// across the flow (whole groups switch simultaneously), so partition 2 needs
// larger bypass switches to hold the same virtual-rail perturbation limit.
#include <iostream>

#include "core/flow.hpp"
#include "electrical/sensor_model.hpp"
#include "estimators/current_profile.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/array_cut.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  std::cout << "=== Figure 2: partition shape vs BIC sensor area ===\n\n";

  constexpr std::size_t kRows = 9;
  constexpr std::size_t kCols = 12;
  constexpr std::size_t kBands = 3;
  const auto cut = netlist::gen::make_array_cut(kRows, kCols);
  const auto library = lib::default_library();
  const auto cells = lib::bind_cells(cut.netlist, library);
  const est::TransitionTimes tt(cut.netlist);
  const elec::SensorSpec sensor;

  std::cout << "array CUT: " << kRows << "x" << kCols
            << " cells (types NAND/NOR/AND cycling by column), " << kBands
            << " modules per partition\n\n";

  report::TextTable table({"partition", "module", "gates", "iDD_max [uA]",
                           "Rs [kOhm]", "sensor area"});
  double area[2] = {0.0, 0.0};
  double worst[2] = {0.0, 0.0};
  const char* names[2] = {"1: along flow (rows)", "2: across flow (cols)"};
  const auto partitions = {netlist::gen::row_band_partition(cut, kBands),
                           netlist::gen::column_band_partition(cut, kBands)};
  std::size_t p = 0;
  for (const auto& groups : partitions) {
    for (std::size_t m = 0; m < groups.size(); ++m) {
      const auto profile = est::profile_of(tt, cells, groups[m]);
      const double idd = profile.max_current_ua();
      const double rs = elec::sensor_rs_kohm(sensor, idd);
      const double a = elec::sensor_area(sensor, rs);
      area[p] += a;
      worst[p] = std::max(worst[p], idd);
      table.add_row({names[p], std::to_string(m),
                     std::to_string(groups[m].size()),
                     report::format_fixed(idd, 0),
                     report::format_fixed(rs, 4), report::format_eng(a)});
    }
    ++p;
  }
  table.print(std::cout);

  std::cout << "\ntotal sensor area:  partition 1 = "
            << report::format_eng(area[0]) << ", partition 2 = "
            << report::format_eng(area[1]) << "  (partition 2 needs "
            << report::format_pct(area[1] / area[0] - 1.0)
            << " more)\n";
  std::cout << "worst module iDD:   partition 1 = "
            << report::format_fixed(worst[0], 0) << " uA, partition 2 = "
            << report::format_fixed(worst[1], 0) << " uA  (ratio "
            << report::format_fixed(worst[1] / worst[0], 2) << "x)\n";
  std::cout <<
      "\npaper's qualitative claim: partition 1 (cells C1,C2,C3 chained, not\n"
      "switching in parallel) should be preferred -- reproduced when the\n"
      "area and iDD ratios above exceed 1.\n";
  return 0;
}
