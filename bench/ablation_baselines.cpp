// Ablation: optimizer choice (paper section 4 lists "force-driven,
// simulated annealing, Monte Carlo, genetic" as candidate heuristics before
// adopting the evolution strategy).
//
// All optimizers come from the OptimizerRegistry and run under the same
// cost model on the same circuit with a comparable evaluation budget:
//   * evolution strategy (the paper's choice)
//   * simulated annealing (boundary moves, geometric cooling)
//   * random search (best of many chain-clustered starts)
//   * greedy refinement (first-improvement hill climb from one start)
//   * evolution+greedy (registry-composed polish pipeline)
//   * standard partitioning (the paper's section-5 baseline; deterministic,
//     clustered at the module sizes the evolution strategy discovered)
#include <chrono>
#include <iostream>
#include <string>

#include "core/flow_engine.hpp"
#include "core/optimizer_registry.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  std::cout
      << "=== Ablation: evolution strategy vs alternative optimizers ===\n\n";

  const auto library = lib::default_library();
  report::TextTable table({"circuit", "method", "cost", "area", "c2", "K",
                           "evals", "time"});

  for (const auto name : {"c1908", "c3540"}) {
    const auto nl = netlist::gen::make_iscas_like(name);

    core::FlowEngineConfig config;
    config.optimizers.es.max_generations = 200;
    config.optimizers.es.stall_generations = 50;
    core::FlowEngine engine(nl, library, config);

    const auto timed_method = [&](const std::string& spec,
                                  const core::FlowEngine::RunOptions& opts) {
      const auto t0 = std::chrono::steady_clock::now();
      auto result = engine.run_method(spec, opts);
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      table.add_row({std::string(name), spec,
                     report::format_fixed(result.fitness.cost, 1),
                     report::format_eng(result.sensor_area),
                     report::format_eng(result.costs.c2),
                     std::to_string(result.module_count),
                     std::to_string(result.evaluations),
                     report::format_fixed(s, 2) + "s"});
      return result;
    };

    // Evolution strategy first; its evaluation count sets the budget the
    // other stochastic methods get.
    core::FlowEngine::RunOptions es_opts;
    es_opts.seed = 42;
    const auto es = timed_method("evolution", es_opts);

    core::FlowEngine::RunOptions budgeted;
    budgeted.seed = 42;
    budgeted.max_evaluations = es.evaluations;
    (void)timed_method("annealing", budgeted);
    (void)timed_method("random", budgeted);
    (void)timed_method("greedy", budgeted);
    (void)timed_method("evolution+greedy", es_opts);

    // Standard partitioning at the ES module sizes (paper section 5).
    core::FlowEngine::RunOptions std_opts;
    std_opts.seed = 42;
    std_opts.start = &es.partition;
    (void)timed_method("standard", std_opts);
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: the evolution strategy should reach the lowest cost at a\n"
      "matched budget; annealing/greedy land nearby, random search and the\n"
      "connectivity-only standard clustering trail behind on sensor area.\n";
  return 0;
}
