// Ablation: optimizer choice (paper section 4 lists "force-driven,
// simulated annealing, Monte Carlo, genetic" as candidate heuristics before
// adopting the evolution strategy).
//
// All optimizers run under the same cost model on the same circuit with a
// comparable evaluation budget:
//   * evolution strategy (the paper's choice)
//   * simulated annealing (boundary moves, geometric cooling)
//   * random search (best of many chain-clustered starts)
//   * greedy refinement (first-improvement hill climb from one start)
//   * standard partitioning (the paper's section-5 baseline; deterministic)
#include <chrono>
#include <iostream>

#include "core/annealing.hpp"
#include "core/evolution.hpp"
#include "core/flow.hpp"
#include "core/random_search.hpp"
#include "core/refiner.hpp"
#include "core/size_planner.hpp"
#include "core/standard_partition.hpp"
#include "core/start_partition.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  std::cout << "=== Ablation: evolution strategy vs alternative optimizers ===\n\n";

  const auto library = lib::default_library();
  report::TextTable table({"circuit", "method", "cost", "area", "c2", "K",
                           "evals", "time"});

  for (const auto name : {"c1908", "c3540"}) {
    const auto nl = netlist::gen::make_iscas_like(name);
    const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                                part::CostWeights{});
    const auto plan = core::plan_module_size(ctx);
    const std::size_t k = plan.module_count;

    const auto report_row = [&](const std::string& method,
                                const part::Partition& p, std::size_t evals,
                                double seconds) {
      part::PartitionEvaluator eval(ctx, p);
      const auto costs = eval.costs();
      table.add_row({std::string(name), method,
                     report::format_fixed(eval.fitness().cost, 1),
                     report::format_eng(eval.total_sensor_area()),
                     report::format_eng(costs.c2),
                     std::to_string(p.module_count()),
                     std::to_string(evals),
                     report::format_fixed(seconds, 2) + "s"});
    };
    const auto timed = [](auto&& fn) {
      const auto t0 = std::chrono::steady_clock::now();
      auto value = fn();
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      return std::make_pair(std::move(value), s);
    };

    // Evolution strategy.
    core::EsParams es;
    es.max_generations = 200;
    es.stall_generations = 50;
    es.seed = 42;
    core::EvolutionEngine engine(ctx, es);
    const auto [es_result, es_time] =
        timed([&] { return engine.run_with_module_count(k); });
    report_row("evolution", es_result.best_partition, es_result.evaluations,
               es_time);
    const std::size_t budget = es_result.evaluations;

    // Simulated annealing at the same budget.
    core::SaParams sa;
    sa.steps = budget;
    sa.seed = 42;
    Rng sa_rng(1);
    const auto sa_start = core::make_start_partition(nl, k, sa_rng);
    const auto [sa_result, sa_time] =
        timed([&] { return core::simulated_annealing(ctx, sa_start, sa); });
    report_row("annealing", sa_result.best_partition, sa_result.evaluations,
               sa_time);

    // Random search at the same budget.
    const auto [rs_result, rs_time] = timed(
        [&] { return core::random_search(ctx, k, budget, 42); });
    report_row("random", rs_result.best_partition, rs_result.evaluations,
               rs_time);

    // Greedy refinement from one start.
    Rng gr_rng(1);
    const auto [gr_eval, gr_time] = timed([&] {
      part::PartitionEvaluator eval(ctx,
                                    core::make_start_partition(nl, k, gr_rng));
      core::greedy_refine(eval, budget);
      return eval;
    });
    report_row("greedy", gr_eval.partition(), budget, gr_time);

    // Standard partitioning at the ES module sizes.
    std::vector<std::size_t> sizes;
    for (std::uint32_t m = 0; m < es_result.best_partition.module_count();
         ++m)
      sizes.push_back(es_result.best_partition.module_size(m));
    const auto [std_partition, std_time] = timed(
        [&] { return core::standard_partition(nl, ctx.oracle, sizes); });
    report_row("standard", std_partition, 1, std_time);
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: the evolution strategy should reach the lowest cost at a\n"
      "matched budget; annealing/greedy land nearby, random search and the\n"
      "connectivity-only standard clustering trail behind on sensor area.\n";
  return 0;
}
