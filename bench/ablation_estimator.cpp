// Ablation: how pessimistic is the section-3.1 max-current estimator?
//
// The paper concedes the estimate is "approximate and pessimistic, but
// computationally efficient". This bench quantifies the pessimism: per
// module of a planned partition, the estimated iDD_max (all gates switch at
// every possible arrival) versus the peak simultaneous switching measured by
// logic simulation of random vector pairs (each toggling gate switches once,
// at its final-arrival depth).
#include <iostream>

#include "core/flow.hpp"
#include "core/start_partition.hpp"
#include "estimators/current_profile.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "report/table.hpp"
#include "sim/activity.hpp"
#include "sim/patterns.hpp"

int main() {
  using namespace iddq;
  std::cout << "=== Ablation: estimated vs simulated module peak current ===\n\n";

  const auto library = lib::default_library();
  report::TextTable table({"circuit", "module", "gates", "estimate [uA]",
                           "simulated [uA]", "pessimism"});

  for (const auto name : {"c1908", "c6288"}) {
    const auto nl = netlist::gen::make_iscas_like(name);
    const auto cells = lib::bind_cells(nl, library);
    // Unit-depth grid on both sides so the comparison is apples-to-apples.
    const est::TransitionTimes tt(nl);
    Rng rng(11);
    const auto partition = core::make_start_partition(nl, 4, rng);

    std::vector<std::uint32_t> mof(nl.gate_count(),
                                   static_cast<std::uint32_t>(-1));
    for (const auto g : nl.logic_gates()) mof[g] = partition.module_of(g);

    Rng pat_rng(23);
    const auto patterns = sim::random_patterns(nl, 512, pat_rng);
    const sim::ActivityAnalyzer analyzer(nl, tt, cells);
    const auto measured = analyzer.measure(patterns, mof, 4);

    for (std::uint32_t m = 0; m < 4; ++m) {
      const auto estimate =
          est::profile_of(tt, cells, partition.module(m)).max_current_ua();
      const double sim_peak = measured.peak_current_ua[m];
      table.add_row(
          {std::string(name), std::to_string(m),
           std::to_string(partition.module_size(m)),
           report::format_fixed(estimate, 0),
           report::format_fixed(sim_peak, 0),
           sim_peak > 0.0
               ? report::format_fixed(estimate / sim_peak, 2) + "x"
               : "inf"});
    }
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: the estimator stays a strict upper bound (pessimism >= 1x)\n"
      "as the paper requires for safe switch sizing; the factor is the price\n"
      "paid for evaluating thousands of partitions without simulation.\n";
  return 0;
}
