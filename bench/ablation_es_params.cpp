// Ablation: evolution-strategy control parameters (paper section 4.2).
//
// The ES is controlled by mu (parents), lambda (children/parent), chi
// (Monte-Carlo descendants/parent), kappa (max lifetime), m (step width) and
// epsilon (step-width variation). This bench sweeps each around the default
// configuration on c1908 and reports the converged cost and evaluation
// count, reproducing the paper's observation that "the convergence of this
// procedure depends on the start population and on the set of control
// parameters used".
#include <iostream>

#include "core/evolution.hpp"
#include "core/size_planner.hpp"
#include "library/cell_library.hpp"
#include "netlist/gen/iscas_profiles.hpp"
#include "partition/evaluator.hpp"
#include "report/table.hpp"

int main() {
  using namespace iddq;
  std::cout << "=== Ablation: ES control parameters (c1908) ===\n\n";

  const auto nl = netlist::gen::make_iscas_like("c1908");
  const auto library = lib::default_library();
  const part::EvalContext ctx(nl, library, elec::SensorSpec{},
                              part::CostWeights{});
  const auto plan = core::plan_module_size(ctx);

  const auto base = [] {
    core::EsParams p;
    p.mu = 8;
    p.lambda = 7;
    p.chi = 2;
    p.kappa = 8;
    p.m0 = 4;
    p.epsilon = 1.0;
    p.max_generations = 150;
    p.stall_generations = 40;
    p.seed = 42;
    return p;
  };

  struct Variant {
    const char* label;
    core::EsParams params;
  };
  std::vector<Variant> variants;
  variants.push_back({"default (8,7,2,k8,m4)", base()});
  {
    auto p = base();
    p.mu = 2;
    variants.push_back({"few parents (mu=2)", p});
  }
  {
    auto p = base();
    p.mu = 16;
    variants.push_back({"many parents (mu=16)", p});
  }
  {
    auto p = base();
    p.lambda = 2;
    variants.push_back({"few children (lambda=2)", p});
  }
  {
    auto p = base();
    p.chi = 0;
    variants.push_back({"no Monte-Carlo (chi=0)", p});
  }
  {
    auto p = base();
    p.chi = 6;
    variants.push_back({"heavy Monte-Carlo (chi=6)", p});
  }
  {
    auto p = base();
    p.kappa = 1;
    variants.push_back({"comma-selection (kappa=1)", p});
  }
  {
    auto p = base();
    p.kappa = 1000;
    variants.push_back({"plus-selection (kappa=inf)", p});
  }
  {
    auto p = base();
    p.m0 = 1;
    p.epsilon = 0.0;
    variants.push_back({"single-gate steps (m=1)", p});
  }
  {
    auto p = base();
    p.m0 = 32;
    variants.push_back({"large steps (m0=32)", p});
  }

  report::TextTable table(
      {"variant", "best cost", "gens", "evals", "K", "feasible"});
  for (const auto& v : variants) {
    core::EvolutionEngine engine(ctx, v.params);
    const auto result = engine.run_with_module_count(plan.module_count);
    table.add_row({v.label, report::format_fixed(result.best_fitness.cost, 1),
                   std::to_string(result.generations),
                   std::to_string(result.evaluations),
                   std::to_string(result.best_partition.module_count()),
                   result.best_fitness.feasible() ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout <<
      "\nreading: Monte-Carlo descendants (chi>0) and a finite lifetime\n"
      "(kappa) are the paper's devices against local minima; removing them\n"
      "or shrinking the population typically stalls at a higher cost.\n";
  return 0;
}
